(** Statistical accumulators for simulation measurements. *)

(** Streaming summary: count, mean, variance (Welford), min, max.
    O(1) per observation, no sample retention. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0.0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0.0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** 0.0 when empty, consistently with [mean]. *)

  val max : t -> float
  (** 0.0 when empty, consistently with [mean]. *)

  val total : t -> float
  val merge : t -> t -> t
  (** Combined summary, as if all observations of both were added to one. *)

  val pp : Format.formatter -> t -> unit
end

(** Sample set retaining all observations, for exact quantiles. *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [\[0, 100\]], nearest-rank with linear
      interpolation.  Raises [Invalid_argument] if empty or [p] out of
      range. *)

  val median : t -> float
  val to_array : t -> float array
  (** Observations in insertion order. *)
end

(** Fixed-bucket histogram over [\[lo, hi)] with [buckets] equal bins plus
    underflow/overflow bins. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  (** Length [buckets]; excludes under/overflow. *)

  val underflow : t -> int
  val overflow : t -> int

  val nan_count : t -> int
  (** NaN samples, counted apart — they belong to no bucket (NaN compares
      false against both bounds, and [int_of_float nan] is 0, which used
      to corrupt bucket 0). *)

  val pp : Format.formatter -> t -> unit
  (** ASCII bar rendering. *)
end

(** Log-scale histogram over [\[lo, hi)] with constant {e relative}
    resolution: each power-of-two octave above [lo] is split into
    [sub_buckets] linear sub-buckets (HDR-histogram bucketing).  O(1)
    memory in the sample count — the accumulator for tail-latency
    percentiles over arbitrarily long serving runs. *)
module Log_histogram : sig
  type t

  val create : lo:float -> hi:float -> sub_buckets:int -> t
  (** [lo] must be positive ([lo] is the smallest in-range value; smaller
      samples land in the underflow bin).  Raises [Invalid_argument] on a
      non-positive [lo], [hi <= lo] or [sub_buckets <= 0]. *)

  val add : t -> float -> unit
  (** NaN samples are counted in {!nan_count} and excluded from every
      other statistic. *)

  val count : t -> int
  (** Every [add], including under/overflow and NaN. *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]]: the sub-bucket midpoint
      of the bucket holding the rank-⌈p/100·n⌉ sample (NaNs excluded), a
      relative error of at most [0.5 /. sub_buckets].  Underflow ranks
      report [lo]; overflow ranks report the exact maximum, which is
      tracked separately.  Raises [Invalid_argument] if empty or [p] out
      of range. *)

  val max : t -> float
  (** Exact maximum of non-NaN samples; 0.0 when empty. *)

  val mean : t -> float
  (** Exact mean of non-NaN samples; 0.0 when empty. *)

  val underflow : t -> int
  val overflow : t -> int
  val nan_count : t -> int

  val pp : Format.formatter -> t -> unit
  (** ASCII bar rendering of the non-empty buckets. *)
end

(** Time-weighted average of a piecewise-constant quantity, e.g. the number
    of busy processors.  Feed it level changes; it integrates level * dt. *)
module Weighted : sig
  type t

  val create : at:Time.t -> level:float -> t
  val update : t -> at:Time.t -> level:float -> unit
  (** Record that the level changed to [level] at time [at].  Times must be
      non-decreasing. *)

  val average : t -> upto:Time.t -> float
  (** Time-weighted mean level over [\[start, upto\]]. *)

  val current : t -> float
end
