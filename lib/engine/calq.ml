(* Calendar event queue: ns-keyed buckets with per-bucket FIFO in seq order.

   The discrete-event hot path is dominated by same-instant traffic: a burst
   of events all keyed to the current nanosecond (zero-delay continuations,
   segment completions started together).  A binary heap pays O(log n) and a
   write barrier per sift step for every one of them.  Here an event lands
   in the bucket of its exact ns key — appended to the bucket's FIFO tail in
   O(1) — and pops take the head of the minimum bucket in O(1).  Only the
   first event of a *new* instant pays O(log k) to push its bucket into a
   small index heap, where k is the number of distinct pending instants
   (typically orders of magnitude below the pending-event count).

   Allocation discipline: the queue never allocates on the steady-state
   add/pop path.  Entries live in a struct-of-arrays slab (int fields plus
   one value array) recycled through a freelist; handles are generation-
   tagged immediate ints, so posting an event allocates nothing and a stale
   handle can never cancel a recycled slot.  The only GC-visible write per
   add is the value store itself.

   Ordering contract (the determinism anchor for the whole simulator): pops
   follow the strict lexicographic (key, seq) order, byte-identical to the
   binary-heap reference in Pqueue.  Within a bucket the FIFO is kept in
   ascending seq order — O(1) for the monotone seqs the simulator generates,
   with a sorted-insert fallback for out-of-order generic use.  Buckets are
   deduplicated through a lossy direct-mapped memo; when the memo misses, a
   duplicate bucket for the same key is allowed, and the index heap breaks
   ties by the seq of each bucket's head, which keeps the global order exact
   (see [prio_lt]).

   Cancellation is lazy, as in Pqueue: [cancel] marks the entry dead in
   O(1); dead entries are reclaimed when a pop reaches them, or by an O(n)
   sweep once they outnumber the live ones, so mass-cancel workloads cannot
   grow the slab without bound. *)

type handle = int

(* Handle layout: low 32 bits = slab slot, upper bits = generation at the
   time of issue.  The generation is bumped whenever a slot is freed, so a
   handle retained across its entry's death never matches again (wraps at
   2^30 reuses of a single slot). *)
let slot_bits = 32
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl 30) - 1

(* [-1] decodes to an out-of-range slot, so cancel/handle_live treat it as
   already dead — a handle value that never names an entry. *)
let nil_handle = -1

(* Entry states in [e_state]. *)
let st_free = 0
let st_live = 1
let st_dead = 2 (* cancelled, or picked out of FIFO position: await unlink *)

let nil = -1
let memo_size = 1024

(* Multiplicative hash: ns keys are dense in their low bits only for
   zero-delay bursts and round in their high bits for us/ms periods, so mix
   before indexing the memo. *)
let memo_idx key = (key * 0x2545F4914F6CDD1D) lsr 40 land (memo_size - 1)

type 'a t = {
  (* Entry slab, struct of arrays; the slot index is the entry identity.
     Parallel int arrays keep every bookkeeping write barrier-free. *)
  mutable e_key : int array;
  mutable e_seq : int array;
  mutable e_gen : int array;
  mutable e_next : int array; (* bucket FIFO link, or freelist link *)
  mutable e_state : int array;
  mutable e_val : 'a array; (* [||] until the first add *)
  mutable v_dummy : 'a array; (* one retained value used to clear slots *)
  mutable free_head : int;
  mutable live : int;
  mutable dead : int;
  (* Buckets, struct of arrays: one per distinct pending key (plus rare
     memo-miss duplicates).  A bucket is active iff [b_head >= 0]. *)
  mutable b_key : int array;
  mutable b_head : int array;
  mutable b_tail : int array; (* doubles as the bucket freelist link *)
  mutable b_pos : int array; (* heap position while active *)
  mutable b_free : int;
  (* Index min-heap of active buckets, ordered by (key, seq of head). *)
  mutable hp : int array;
  mutable hp_size : int;
  (* Lossy direct-mapped memo: key hash -> candidate bucket id.  Purely an
     accelerator; entries are verified (active + exact key) before use. *)
  memo : int array;
  (* Reusable pop_pick scratch: candidate entry slots and their buckets. *)
  mutable scratch : int array;
  mutable scratch_b : int array;
  (* Key/seq of the most recently popped entry (valid after a pop). *)
  mutable last_key : int;
  mutable last_seq : int;
}

let create () =
  {
    e_key = [||];
    e_seq = [||];
    e_gen = [||];
    e_next = [||];
    e_state = [||];
    e_val = [||];
    v_dummy = [||];
    free_head = nil;
    live = 0;
    dead = 0;
    b_key = [||];
    b_head = [||];
    b_tail = [||];
    b_pos = [||];
    b_free = nil;
    hp = [||];
    hp_size = 0;
    memo = Array.make memo_size nil;
    scratch = [||];
    scratch_b = [||];
    last_key = 0;
    last_seq = 0;
  }

let length q = q.live
let is_empty q = q.live = 0
let last_key q = q.last_key
let last_seq q = q.last_seq
let slab_capacity q = Array.length q.e_key
let bucket_count q = q.hp_size

(* ------------------------------------------------------------------ *)
(* Entry slab                                                          *)
(* ------------------------------------------------------------------ *)

let grow_int_array a cap ncap fill =
  let n = Array.make ncap fill in
  Array.blit a 0 n 0 cap;
  n

let grow_entries q v =
  let cap = Array.length q.e_key in
  if cap = 0 then begin
    q.e_key <- Array.make 16 0;
    q.e_seq <- Array.make 16 0;
    q.e_gen <- Array.make 16 0;
    q.e_next <- Array.init 16 (fun i -> if i = 15 then nil else i + 1);
    q.e_state <- Array.make 16 st_free;
    q.e_val <- Array.make 16 v;
    q.v_dummy <- [| v |];
    q.free_head <- 0
  end
  else begin
    let ncap = cap * 2 in
    q.e_key <- grow_int_array q.e_key cap ncap 0;
    q.e_seq <- grow_int_array q.e_seq cap ncap 0;
    q.e_gen <- grow_int_array q.e_gen cap ncap 0;
    q.e_state <- grow_int_array q.e_state cap ncap st_free;
    let next = Array.make ncap nil in
    Array.blit q.e_next 0 next 0 cap;
    for i = cap to ncap - 1 do
      next.(i) <- (if i = ncap - 1 then q.free_head else i + 1)
    done;
    q.e_next <- next;
    let vals = Array.make ncap q.v_dummy.(0) in
    Array.blit q.e_val 0 vals 0 cap;
    q.e_val <- vals;
    q.free_head <- cap
  end

let alloc_entry q ~key ~seq v =
  if q.free_head = nil then grow_entries q v;
  let s = q.free_head in
  q.free_head <- q.e_next.(s);
  q.e_key.(s) <- key;
  q.e_seq.(s) <- seq;
  q.e_next.(s) <- nil;
  q.e_state.(s) <- st_live;
  q.e_val.(s) <- v;
  q.live <- q.live + 1;
  s

(* Free a slot: bump the generation (invalidating outstanding handles),
   clear the value so the GC can drop it, and push onto the freelist. *)
let free_entry q s =
  q.e_gen.(s) <- (q.e_gen.(s) + 1) land gen_mask;
  q.e_state.(s) <- st_free;
  q.e_val.(s) <- q.v_dummy.(0);
  q.e_next.(s) <- q.free_head;
  q.free_head <- s

(* ------------------------------------------------------------------ *)
(* Bucket index heap                                                   *)
(* ------------------------------------------------------------------ *)

(* Bucket priority: (key, seq of head entry), strict lexicographic.  Head
   seqs are compared even across dead heads — a dead head only lowers its
   bucket's priority, which [settle] repairs before anything observable. *)
let prio_lt q a b =
  let ka = q.b_key.(a) and kb = q.b_key.(b) in
  ka < kb || (ka = kb && q.e_seq.(q.b_head.(a)) < q.e_seq.(q.b_head.(b)))

let hp_swap q i j =
  let bi = q.hp.(i) and bj = q.hp.(j) in
  q.hp.(i) <- bj;
  q.hp.(j) <- bi;
  q.b_pos.(bi) <- j;
  q.b_pos.(bj) <- i

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if prio_lt q q.hp.(i) q.hp.(parent) then begin
      hp_swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.hp_size && prio_lt q q.hp.(left) q.hp.(!smallest) then
    smallest := left;
  if right < q.hp_size && prio_lt q q.hp.(right) q.hp.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    hp_swap q i !smallest;
    sift_down q !smallest
  end

let hp_push q b =
  let cap = Array.length q.hp in
  if q.hp_size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    q.hp <- grow_int_array q.hp cap ncap nil
  end;
  q.hp.(q.hp_size) <- b;
  q.b_pos.(b) <- q.hp_size;
  q.hp_size <- q.hp_size + 1;
  sift_up q (q.hp_size - 1)

let hp_remove_at q pos =
  q.hp_size <- q.hp_size - 1;
  if pos < q.hp_size then begin
    let moved = q.hp.(q.hp_size) in
    q.hp.(pos) <- moved;
    q.b_pos.(moved) <- pos;
    sift_down q pos;
    sift_up q pos
  end

(* ------------------------------------------------------------------ *)
(* Buckets                                                             *)
(* ------------------------------------------------------------------ *)

let grow_buckets q =
  let cap = Array.length q.b_key in
  let ncap = if cap = 0 then 16 else cap * 2 in
  q.b_key <- grow_int_array q.b_key cap ncap min_int;
  q.b_head <- grow_int_array q.b_head cap ncap nil;
  q.b_tail <- grow_int_array q.b_tail cap ncap nil;
  q.b_pos <- grow_int_array q.b_pos cap ncap nil;
  for i = ncap - 1 downto cap do
    q.b_tail.(i) <- q.b_free;
    q.b_free <- i
  done

let alloc_bucket q ~key ~head =
  if q.b_free = nil then grow_buckets q;
  let b = q.b_free in
  q.b_free <- q.b_tail.(b);
  q.b_key.(b) <- key;
  q.b_head.(b) <- head;
  q.b_tail.(b) <- head;
  hp_push q b;
  b

let free_bucket q b =
  q.b_key.(b) <- min_int;
  q.b_head.(b) <- nil;
  q.b_tail.(b) <- q.b_free;
  q.b_free <- b

(* ------------------------------------------------------------------ *)
(* Add                                                                 *)
(* ------------------------------------------------------------------ *)

(* Out-of-order seq for an existing key: walk the FIFO to the insertion
   point.  Never taken by the simulator (seqs are globally monotone); kept
   for generic use so the (key, seq) contract holds unconditionally. *)
let insert_sorted q b slot seq =
  let rec go prev cur =
    if cur = nil || q.e_seq.(cur) > seq then begin
      q.e_next.(slot) <- cur;
      if prev = nil then begin
        q.b_head.(b) <- slot;
        (* The head seq just decreased: restore the heap invariant. *)
        sift_up q q.b_pos.(b)
      end
      else q.e_next.(prev) <- slot;
      if cur = nil then q.b_tail.(b) <- slot
    end
    else go cur q.e_next.(cur)
  in
  go nil q.b_head.(b)

let add q ~key ~seq v =
  let slot = alloc_entry q ~key ~seq v in
  let h = (q.e_gen.(slot) lsl slot_bits) lor slot in
  let mi = memo_idx key in
  let b0 = q.memo.(mi) in
  let b =
    if b0 <> nil && q.b_head.(b0) >= 0 && q.b_key.(b0) = key then b0
    else if q.hp_size > 0 && q.b_key.(q.hp.(0)) = key then begin
      let r = q.hp.(0) in
      q.memo.(mi) <- r;
      r
    end
    else begin
      let b = alloc_bucket q ~key ~head:slot in
      q.memo.(mi) <- b;
      b
    end
  in
  if q.b_head.(b) <> slot then begin
    let tail = q.b_tail.(b) in
    if q.e_seq.(tail) <= seq then begin
      (* Same-epoch fast path: append to the FIFO tail, O(1). *)
      q.e_next.(tail) <- slot;
      q.b_tail.(b) <- slot
    end
    else insert_sorted q b slot seq
  end;
  h

(* ------------------------------------------------------------------ *)
(* Settle: make the minimum bucket's head live                         *)
(* ------------------------------------------------------------------ *)

(* Unlink the head entry of the bucket at heap position [pos]; the caller
   has already read anything it needs from the slot. *)
let unlink_head q pos b =
  let s = q.b_head.(b) in
  let n = q.e_next.(s) in
  free_entry q s;
  if n = nil then begin
    hp_remove_at q pos;
    free_bucket q b
  end
  else begin
    q.b_head.(b) <- n;
    (* The head seq increased, so the bucket can only need to move down.
       When it is the only bucket at its key, the first comparison stops
       the sift, so same-epoch pops stay O(1). *)
    sift_down q pos
  end

(* Reclaim dead entries sitting at the front of the minimum bucket, so the
   root head is live.  Requires live > 0. *)
let rec settle q =
  let b = q.hp.(0) in
  if q.e_state.(q.b_head.(b)) <> st_live then begin
    q.dead <- q.dead - 1;
    unlink_head q 0 b;
    settle q
  end

(* ------------------------------------------------------------------ *)
(* Pop                                                                 *)
(* ------------------------------------------------------------------ *)

let pop_exn q =
  if q.live = 0 then invalid_arg "Calq.pop_exn: empty";
  settle q;
  let b = q.hp.(0) in
  let s = q.b_head.(b) in
  let v = q.e_val.(s) in
  q.last_key <- q.e_key.(s);
  q.last_seq <- q.e_seq.(s);
  q.live <- q.live - 1;
  unlink_head q 0 b;
  v

let pop q =
  if q.live = 0 then None
  else begin
    let v = pop_exn q in
    Some (q.last_key, q.last_seq, v)
  end

let next_key q =
  if q.live = 0 then max_int
  else begin
    settle q;
    q.b_key.(q.hp.(0))
  end

let peek_key q =
  if q.live = 0 then None
  else begin
    settle q;
    let b = q.hp.(0) in
    Some (q.b_key.(b), q.e_seq.(q.b_head.(b)))
  end

(* ------------------------------------------------------------------ *)
(* Sweep: reclaim dead entries left deep inside buckets                *)
(* ------------------------------------------------------------------ *)

let sweep q =
  (* Unlink every dead entry, dropping buckets that empty out, then
     rebuild the index heap over the survivors (Floyd, O(k)).  Observable
     order is untouched: it is fully determined by the (key, seq) pairs of
     the live entries. *)
  let w = ref 0 in
  for pos = 0 to q.hp_size - 1 do
    let b = q.hp.(pos) in
    let head = ref nil and tail = ref nil in
    let cur = ref q.b_head.(b) in
    while !cur <> nil do
      let s = !cur in
      let next = q.e_next.(s) in
      if q.e_state.(s) = st_live then begin
        if !head = nil then head := s else q.e_next.(!tail) <- s;
        q.e_next.(s) <- nil;
        tail := s
      end
      else free_entry q s;
      cur := next
    done;
    if !head = nil then free_bucket q b
    else begin
      q.b_head.(b) <- !head;
      q.b_tail.(b) <- !tail;
      q.hp.(!w) <- b;
      incr w
    end
  done;
  q.hp_size <- !w;
  for i = 0 to q.hp_size - 1 do
    q.b_pos.(q.hp.(i)) <- i
  done;
  for i = (q.hp_size / 2) - 1 downto 0 do
    sift_down q i
  done;
  q.dead <- 0

(* Amortized O(1) per cancellation: sweep only once dead entries dominate
   and there are enough to pay for the walk. *)
let maybe_sweep q = if q.dead > 64 && q.dead > q.live then sweep q

(* ------------------------------------------------------------------ *)
(* Cancel                                                              *)
(* ------------------------------------------------------------------ *)

let cancel q h =
  let s = h land slot_mask in
  if
    s < Array.length q.e_key
    && q.e_gen.(s) = h lsr slot_bits
    && q.e_state.(s) = st_live
  then begin
    q.e_state.(s) <- st_dead;
    q.e_val.(s) <- q.v_dummy.(0);
    q.live <- q.live - 1;
    q.dead <- q.dead + 1;
    maybe_sweep q
  end

let handle_live q h =
  let s = h land slot_mask in
  s < Array.length q.e_key
  && q.e_gen.(s) = h lsr slot_bits
  && q.e_state.(s) = st_live

(* ------------------------------------------------------------------ *)
(* pop_pick: same-instant candidate selection                          *)
(* ------------------------------------------------------------------ *)

let grow_scratch q n =
  let cap = Array.length q.scratch in
  if n > cap then begin
    let ncap = max 16 (max n (cap * 2)) in
    q.scratch <- grow_int_array q.scratch cap ncap nil;
    q.scratch_b <- grow_int_array q.scratch_b cap ncap nil
  end

(* Collect the live entries of every bucket keyed [kmin] into the scratch
   arrays.  Buckets with a larger key head heap subtrees whose keys are all
   larger, so the walk touches only minimal-key buckets (plus their direct
   children, for the bound check). *)
let collect_candidates q kmin =
  let n = ref 0 in
  let rec walk pos =
    if pos < q.hp_size then begin
      let b = q.hp.(pos) in
      if q.b_key.(b) = kmin then begin
        let cur = ref q.b_head.(b) in
        while !cur <> nil do
          if q.e_state.(!cur) = st_live then begin
            grow_scratch q (!n + 1);
            q.scratch.(!n) <- !cur;
            q.scratch_b.(!n) <- b;
            incr n
          end;
          cur := q.e_next.(!cur)
        done;
        walk ((2 * pos) + 1);
        walk ((2 * pos) + 2)
      end
    end
  in
  walk 0;
  (* Ascending seq across buckets.  Each bucket contributed an ascending
     run, so this insertion sort is O(n) unless memo misses created
     duplicate buckets — and those are rare and short-lived. *)
  let sc = q.scratch and scb = q.scratch_b in
  for i = 1 to !n - 1 do
    let s = sc.(i) and b = scb.(i) in
    let seq = q.e_seq.(s) in
    let j = ref (i - 1) in
    while !j >= 0 && q.e_seq.(sc.(!j)) > seq do
      sc.(!j + 1) <- sc.(!j);
      scb.(!j + 1) <- scb.(!j);
      decr j
    done;
    sc.(!j + 1) <- s;
    scb.(!j + 1) <- b
  done;
  !n

let pop_pick_exn q ~pick =
  if q.live = 0 then invalid_arg "Calq.pop_pick_exn: empty";
  settle q;
  let kmin = q.b_key.(q.hp.(0)) in
  let n = collect_candidates q kmin in
  let i =
    if n <= 1 then 0
    else
      let i = pick n in
      if i < 0 || i >= n then 0 else i
  in
  let s = q.scratch.(i) in
  let b = q.scratch_b.(i) in
  let v = q.e_val.(s) in
  q.last_key <- q.e_key.(s);
  q.last_seq <- q.e_seq.(s);
  q.live <- q.live - 1;
  if q.b_head.(b) = s then unlink_head q q.b_pos.(b) b
  else begin
    (* Picked out of FIFO position: exactly a cancellation, reclaimed by
       the same lazy machinery. *)
    q.e_state.(s) <- st_dead;
    q.e_val.(s) <- q.v_dummy.(0);
    q.dead <- q.dead + 1;
    maybe_sweep q
  end;
  v

let pop_pick q ~pick =
  if q.live = 0 then None
  else begin
    let v = pop_pick_exn q ~pick in
    Some (q.last_key, q.last_seq, v)
  end

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let to_list q =
  let out = ref [] in
  for pos = 0 to q.hp_size - 1 do
    let cur = ref q.b_head.(q.hp.(pos)) in
    while !cur <> nil do
      let s = !cur in
      if q.e_state.(s) = st_live then
        out := (q.e_key.(s), q.e_seq.(s), q.e_val.(s)) :: !out;
      cur := q.e_next.(s)
    done
  done;
  List.sort
    (fun (k1, s1, _) (k2, s2, _) ->
      if k1 <> k2 then Int.compare k1 k2 else Int.compare s1 s2)
    !out
