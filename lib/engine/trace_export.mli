(** Chrome trace-event (Perfetto-compatible) JSON export of {!Trace} records.

    The writer streams events as they are fed, so it can act as a live
    {!Trace.add_sink} sink and is not bounded by the trace ring's capacity.
    Output is the JSON object format [{"traceEvents": [...]}], loadable in
    Perfetto (ui.perfetto.dev) or [chrome://tracing].

    Track layout: records bound to a processor ([cpu >= 0]) land on one
    thread track per simulated CPU, using synchronous duration events
    (["ph":"B"/"E"]), which therefore must nest properly per CPU.  Records
    with no processor ([cpu = -1]) are exported as asynchronous nestable
    spans (["ph":"b"/"e"]) keyed by activation id, which may overlap freely
    — used for spans that migrate across CPUs, like I/O blocks and
    critical-section recovery.  Counters become ["ph":"C"] counter tracks,
    instants ["ph":"i"]. *)

type t

val create : out:(string -> unit) -> t
(** [create ~out] writes the stream header via [out] and returns a writer.
    [out] is called with successive chunks of JSON text. *)

val feed : t -> Trace.record -> unit
(** Append one record to the stream.  Suitable as a {!Trace.add_sink} sink:
    [Trace.add_sink tr (Trace_export.feed w)]. *)

val close : t -> unit
(** Terminate the JSON document.  Idempotent; [feed] after [close] is a
    no-op. *)

val export : out:(string -> unit) -> Trace.record list -> unit
(** One-shot export of a record list (e.g. {!Trace.records}). *)

val to_string : Trace.record list -> string
(** [export] into a fresh buffer. *)
