(** Discrete-event simulation driver.

    A [Sim.t] owns the simulated clock and the pending-event queue.  Events
    scheduled for the same instant fire in scheduling order (FIFO), which
    makes runs fully deterministic.  Event callbacks may schedule and cancel
    further events. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val null_handle : handle
(** A handle naming no event: {!cancel} on it is a no-op.  Lets callers
    keep a [handle] field without an option box. *)

val create : ?trace:Trace.t -> unit -> t
(** Fresh simulation at time {!Time.zero}. *)

val now : t -> Time.t
(** Current simulated time. *)

val trace : t -> Trace.t

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule sim ~at f] arranges for [f ()] to run at instant [at].  Raises
    [Invalid_argument] if [at] is in the past. *)

val schedule_after : t -> delay:Time.span -> (unit -> unit) -> handle
(** [schedule_after sim ~delay f] schedules [f] at [now + delay].  A negative
    [delay] is an error; [delay = 0] fires after currently-queued events for
    this instant. *)

val cancel : t -> handle -> unit
(** Cancel a pending event.  Idempotent; harmless if already fired. *)

val pending : t -> int
(** Number of live scheduled events. *)

val step : t -> bool
(** Fire the next event, advancing the clock.  [false] if none pending. *)

val run : ?until:Time.t -> t -> unit
(** Fire events in order until the queue is empty, or until the next event
    would fire after [until] (the clock is then left at the last fired
    event's time). *)

val run_for : t -> Time.span -> unit
(** [run_for sim d] is [run ~until:(now + d) sim]. *)

val run_while : t -> (unit -> bool) -> unit
(** Fire events while the predicate holds and events remain.  Used to drive
    a simulation populated with perpetual periodic activity (e.g. kernel
    daemons) until a workload-completion condition. *)

exception Stalled of string

val stall : t -> string -> 'a
(** Abort the simulation, reporting a deadlock or invariant violation.  The
    message carried by {!Stalled} is suffixed with the current clock, the
    pending-event count and the same-instant counter, so a failure report is
    enough to locate the stall in a deterministic replay. *)

val events : t -> int
(** Total events fired since creation (the throughput numerator reported by
    [bench scale]).  Deterministic: a digest-identical schedule fires the
    same number of events. *)

val same_instant_count : t -> int
(** Events fired at the current instant since the clock last advanced (the
    counter guarded by {!set_same_instant_limit}). *)

val set_same_instant_limit : t -> int -> unit
(** Livelock guard: if more than this many events fire without the clock
    advancing (default 200,000), the simulation raises {!Stalled} — a
    zero-delay event loop would otherwise hang the process while simulated
    time stands still. *)

(** {1 Choice points}

    Every source of schedule nondeterminism in the system funnels through a
    single optional {!chooser}, so exploration tools can record, replay and
    perturb the full decision sequence of a run.  With no chooser installed
    ({!set_chooser}[ t None], the default) every choice point returns its
    [default] and the run is bit-for-bit identical to the pre-chooser
    behaviour. *)

type chooser = {
  ch_pick : site:string -> arity:int -> default:int -> int;
      (** [ch_pick ~site ~arity ~default] selects one of [arity >= 2]
          alternatives at the named choice point; [default] reproduces the
          unperturbed behaviour.  Out-of-range results are treated as
          [default]. *)
  ch_draw : site:string -> default:int64 -> int64;
      (** [ch_draw ~site ~default] may override a raw 64-bit random draw;
          [default] is the value the underlying generator produced. *)
}

val set_chooser : t -> chooser option -> unit
(** Install (or clear) the chooser.  While installed, same-instant event
    ordering in {!step} is routed through [ch_pick] at site ["sim-order"]
    (candidates in FIFO order, so choice 0 is today's behaviour), and
    components consult {!pick}/{!draw} at their own sites. *)

val chooser : t -> chooser option

val pick : t -> site:string -> arity:int -> default:int -> int
(** [pick t ~site ~arity ~default] consults the installed chooser, or
    returns [default] if none (or if the chooser's answer is out of range).
    Raises [Invalid_argument] if [arity <= 0]. *)

val draw : t -> site:string -> default:int64 -> int64
(** [draw t ~site ~default] consults the installed chooser's [ch_draw], or
    returns [default] if none. *)
