(** Discrete-event simulation driver.

    A [Sim.t] owns the simulated clock and the pending-event queue.  Events
    scheduled for the same instant fire in scheduling order (FIFO), which
    makes runs fully deterministic.  Event callbacks may schedule and cancel
    further events. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?trace:Trace.t -> unit -> t
(** Fresh simulation at time {!Time.zero}. *)

val now : t -> Time.t
(** Current simulated time. *)

val trace : t -> Trace.t

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule sim ~at f] arranges for [f ()] to run at instant [at].  Raises
    [Invalid_argument] if [at] is in the past. *)

val schedule_after : t -> delay:Time.span -> (unit -> unit) -> handle
(** [schedule_after sim ~delay f] schedules [f] at [now + delay].  A negative
    [delay] is an error; [delay = 0] fires after currently-queued events for
    this instant. *)

val cancel : t -> handle -> unit
(** Cancel a pending event.  Idempotent; harmless if already fired. *)

val pending : t -> int
(** Number of live scheduled events. *)

val step : t -> bool
(** Fire the next event, advancing the clock.  [false] if none pending. *)

val run : ?until:Time.t -> t -> unit
(** Fire events in order until the queue is empty, or until the next event
    would fire after [until] (the clock is then left at the last fired
    event's time). *)

val run_for : t -> Time.span -> unit
(** [run_for sim d] is [run ~until:(now + d) sim]. *)

val run_while : t -> (unit -> bool) -> unit
(** Fire events while the predicate holds and events remain.  Used to drive
    a simulation populated with perpetual periodic activity (e.g. kernel
    daemons) until a workload-completion condition. *)

exception Stalled of string

val stall : t -> string -> 'a
(** Abort the simulation, reporting a deadlock or invariant violation.  The
    message carried by {!Stalled} is suffixed with the current clock, the
    pending-event count and the same-instant counter, so a failure report is
    enough to locate the stall in a deterministic replay. *)

val same_instant_count : t -> int
(** Events fired at the current instant since the clock last advanced (the
    counter guarded by {!set_same_instant_limit}). *)

val set_same_instant_limit : t -> int -> unit
(** Livelock guard: if more than this many events fire without the clock
    advancing (default 200,000), the simulation raises {!Stalled} — a
    zero-delay event loop would otherwise hang the process while simulated
    time stands still. *)
