(** Structured simulation tracing.

    Components emit typed trace records tagged with a category and,
    optionally, the hardware/kernel entities involved (processor, address
    space, activation).  A trace sink keeps the most recent records in a
    ring buffer, can mirror them to a formatter as they arrive, and can
    stream them to structured sinks (e.g. the Chrome trace-event exporter in
    {!Trace_export}).  Tracing off the hot path costs one branch: every
    emitter checks the category's enable bit (and the master
    {!set_recording} switch) before doing any formatting or allocation.
    The ring itself is flattened into parallel arrays, so recording a
    span allocates nothing unless a live formatter or sink is attached. *)

type category =
  | Sim  (** engine-level events *)
  | Cpu  (** dispatch / interrupt / idle transitions *)
  | Kernel  (** syscalls, blocking, allocator decisions *)
  | Upcall  (** scheduler-activation upcalls and downcalls *)
  | Uthread  (** user-level thread operations *)
  | Workload  (** application-level progress *)

val category_name : category -> string

(** What a record denotes.  Spans nest per processor track; records carrying
    no processor ([cpu = -1]) are exported as asynchronous spans keyed by
    activation id. *)
type kind =
  | Instant  (** a point event *)
  | Span_begin  (** opens the span [name] *)
  | Span_end  (** closes the most recent open span [name] *)
  | Counter of float  (** the counter [name] now holds this value *)

type record = {
  time : Time.t;
  category : category;
  kind : kind;
  name : string;  (** span/counter/marker name; [""] for free-form text *)
  cpu : int;  (** processor id, or [-1] when not bound to one *)
  space : int;  (** address-space id, or [-1] *)
  act : int;  (** activation (or kernel-thread) id, or [-1] *)
  message : string;  (** free-form detail *)
}

val no_id : int
(** [-1]: the distinguished "no entity" value of the id fields. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] (default 4096) records. *)

val enable : t -> category -> bool -> unit
(** Toggle recording of a category.  All categories start enabled. *)

val set_recording : t -> bool -> unit
(** Master recording switch, [true] at creation.  When off, {!enabled} is
    [false] for every category: nothing reaches the ring, the live
    formatter, or the sinks, and every emitter's guard short-circuits —
    callers that build detail strings behind {!enabled} checks pay nothing.
    Benchmarks measuring engine throughput turn this off; leave it on when
    any observer (trace export, explore coverage sinks) needs the
    stream. *)

val recording : t -> bool
(** Current state of the master switch. *)

val set_live : t -> Format.formatter option -> unit
(** When set, records are also printed (text format) as they are emitted. *)

val add_sink : t -> (record -> unit) -> unit
(** Register a structured sink: called with every record as it is emitted,
    before ring eviction — sinks see the full stream, not just the last
    [capacity] records.  Sinks fire in registration order. *)

val enabled : t -> category -> bool

val emit : t -> time:Time.t -> category -> string Lazy.t -> unit
(** Record a free-form instant event.  The message is only forced if the
    category is enabled. *)

val emitf :
  t ->
  time:Time.t ->
  category ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted free-form emission.  When the category is disabled the format
    arguments are consumed without any formatting or allocation, so this is
    safe on hot paths. *)

val instant :
  t ->
  time:Time.t ->
  ?cpu:int ->
  ?space:int ->
  ?act:int ->
  ?detail:string ->
  category ->
  string ->
  unit
(** [instant t ~time cat name] records a named point event. *)

val span_begin :
  t ->
  time:Time.t ->
  ?cpu:int ->
  ?space:int ->
  ?act:int ->
  ?detail:string ->
  category ->
  string ->
  unit
(** Open the span [name].  Spans on the same processor must nest: close
    them in reverse order of opening.  Spans with no processor are exported
    as asynchronous (overlap-tolerant) spans keyed by [act]. *)

val span_end :
  t ->
  time:Time.t ->
  ?cpu:int ->
  ?space:int ->
  ?act:int ->
  ?detail:string ->
  category ->
  string ->
  unit

val counter : t -> time:Time.t -> ?cpu:int -> category -> string -> float -> unit
(** [counter t ~time cat name v] records that the counter [name] holds [v]
    from [time] on. *)

val records : t -> record list
(** Contents of the ring, oldest first. *)

val count : t -> int
(** Total records emitted (including ones evicted from the ring). *)

val render_message : record -> string
(** The text rendering of a record's payload, as used by {!dump}. *)

val dump : t -> Format.formatter -> unit
(** Print the ring contents in the text format, oldest first. *)
