type handle = Calq.handle

let null_handle = Calq.nil_handle

type chooser = {
  ch_pick : site:string -> arity:int -> default:int -> int;
  ch_draw : site:string -> default:int64 -> int64;
}

type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Calq.t;
  mutable seq : int;
  trace : Trace.t;
  mutable same_instant : int;  (* events fired without the clock moving *)
  mutable same_instant_limit : int;
  mutable events : int;  (* events fired since creation *)
  mutable chooser : chooser option;
}

exception Stalled of string

let create ?trace () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    clock = Time.zero;
    queue = Calq.create ();
    seq = 0;
    trace;
    same_instant = 0;
    same_instant_limit = 200_000;
    events = 0;
    chooser = None;
  }

let now t = t.clock
let trace t = t.trace
let same_instant_count t = t.same_instant
let events t = t.events
let set_chooser t c = t.chooser <- c
let chooser t = t.chooser

let pick t ~site ~arity ~default =
  if arity <= 0 then invalid_arg "Sim.pick: arity must be positive";
  match t.chooser with
  | None -> default
  | Some c ->
      let i = c.ch_pick ~site ~arity ~default in
      if i < 0 || i >= arity then default else i

let draw t ~site ~default =
  match t.chooser with None -> default | Some c -> c.ch_draw ~site ~default

let schedule t ~at f =
  if Time.compare at t.clock < 0 then
    invalid_arg "Sim.schedule: event in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  Calq.add t.queue ~key:(Time.to_ns at) ~seq f

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f
let cancel t h = Calq.cancel t.queue h
let pending t = Calq.length t.queue

let set_same_instant_limit t n =
  if n <= 0 then invalid_arg "Sim.set_same_instant_limit";
  t.same_instant_limit <- n

(* With no chooser installed this is exactly [Calq.pop_exn]; with one, the
   chooser selects among same-instant candidates ([Calq.pop_pick_exn] only
   consults it when at least two exist, so arity-1 "choices" never reach a
   recorder). *)
let step t =
  if Calq.is_empty t.queue then false
  else begin
    let f =
      match t.chooser with
      | None -> Calq.pop_exn t.queue
      | Some c ->
          Calq.pop_pick_exn t.queue ~pick:(fun n ->
              let i = c.ch_pick ~site:"sim-order" ~arity:n ~default:0 in
              if i < 0 || i >= n then 0 else i)
    in
    let at = Time.of_ns (Calq.last_key t.queue) in
    if Time.compare at t.clock > 0 then begin
      t.clock <- at;
      t.same_instant <- 0
    end
    else begin
      t.same_instant <- t.same_instant + 1;
      if t.same_instant > t.same_instant_limit then
        raise
          (Stalled
             (Printf.sprintf
                "livelock: %d events fired without the clock advancing \
                 [clock=%s pending=%d same-instant=%d]"
                t.same_instant
                (Format.asprintf "%a" Time.pp t.clock)
                (Calq.length t.queue) t.same_instant))
    end;
    t.events <- t.events + 1;
    f ();
    true
  end

let run ?until t =
  let limit = match until with None -> max_int | Some l -> Time.to_ns l in
  while (not (Calq.is_empty t.queue)) && Calq.next_key t.queue <= limit do
    ignore (step t)
  done

let run_for t d = run ~until:(Time.add t.clock d) t

let run_while t pred =
  while pred () && not (Calq.is_empty t.queue) do
    ignore (step t)
  done

let stall t msg =
  let msg =
    Printf.sprintf "%s [clock=%s pending=%d same-instant=%d]" msg
      (Format.asprintf "%a" Time.pp t.clock)
      (Calq.length t.queue) t.same_instant
  in
  Trace.emitf t.trace ~time:t.clock Trace.Sim "STALL: %s" msg;
  raise (Stalled msg)
