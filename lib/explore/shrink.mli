(** ddmin shrinking of a failing schedule.

    A failing schedule found by the search typically diverges from the
    default schedule at hundreds of decisions, nearly all irrelevant to the
    violation.  The shrinker minimizes the {e divergence set}: replaying
    the schedule leniently with a subset of divergences active (masked
    decisions answer with the run's own defaults) and asking whether the
    same violation — identified by {!violation_key}, the message stripped
    of its volatile clock suffix and counts — still occurs.  A
    site-group pre-pass (all-draws, all-picks, each site, smallest first)
    finds the decision class driving the violation in a handful of
    replays; classic ddmin then minimizes within it, all under one bounded
    test budget.  The result is re-recorded into a standalone minimal
    schedule that replays the violation under {!Chooser.Strict}. *)

val violation_key : string -> string
(** First line of a violation message with the [" [clock=…"] suffix cut
    off and digit runs normalized to [#] — stable across replays that
    reach the same violation (same check, same structure) with different
    counts or at different instants. *)

type result = {
  schedule : Schedule.t;
      (** the minimal failing run, re-recorded so it stands alone (its
          decisions are exactly the minimal run's, strict-replayable) *)
  run : Search.run_result;  (** outcome of the minimal run *)
  key : string;  (** the violation key being reproduced *)
  kept : int;  (** divergences surviving minimization *)
  dropped : int;  (** divergences eliminated *)
  tests : int;  (** reduction replays executed *)
}

val shrink :
  ?max_tests:int -> spec:Search.spec -> Schedule.t -> (result, string) Result.t
(** Minimize a failing schedule.  [max_tests] (default 400) bounds the
    number of reduction replays; on exhaustion the best subset so far is
    returned.  [Error] if the schedule does not reproduce a violation in
    the first place, or if the re-recorded minimal run fails to. *)
