type decision =
  | Pick of { site : string; arity : int; default : int; choice : int }
  | Draw of { site : string; default : int64; value : int64 }

type t = {
  meta : (string * string) list;
  decisions : decision array;
}

let empty = { meta = []; decisions = [||] }
let length t = Array.length t.decisions

let picks t =
  Array.fold_left
    (fun acc d -> match d with Pick _ -> acc + 1 | Draw _ -> acc)
    0 t.decisions

let divergent = function
  | Pick p -> p.choice <> p.default
  | Draw d -> not (Int64.equal d.value d.default)

let divergences t =
  let acc = ref [] in
  Array.iteri
    (fun i d -> if divergent d then acc := i :: !acc)
    t.decisions;
  List.rev !acc

let meta_find t key = List.assoc_opt key t.meta
let with_meta t meta = { t with meta }

let pp_decision ppf = function
  | Pick p ->
      Format.fprintf ppf "pick %s arity=%d default=%d choice=%d" p.site
        p.arity p.default p.choice
  | Draw d ->
      Format.fprintf ppf "draw %s default=%Lx value=%Lx" d.site d.default
        d.value

(* --- saving ----------------------------------------------------------- *)

let sanitize s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "sa-sched 1\n";
      List.iter
        (fun (k, v) ->
          Printf.fprintf oc "m %s %s\n" (sanitize k) (sanitize v))
        t.meta;
      (* Intern site names in order of first use. *)
      let sites = Hashtbl.create 16 in
      let order = ref [] in
      let site_id s =
        match Hashtbl.find_opt sites s with
        | Some id -> id
        | None ->
            let id = Hashtbl.length sites in
            Hashtbl.replace sites s id;
            order := (id, s) :: !order;
            id
      in
      let lines =
        Array.map
          (function
            | Pick p ->
                Printf.sprintf "p %d %d %d %d" (site_id p.site) p.arity
                  p.default p.choice
            | Draw d ->
                Printf.sprintf "d %d %Lx %Lx" (site_id d.site) d.default
                  d.value)
          t.decisions
      in
      List.iter
        (fun (id, s) -> Printf.fprintf oc "s %d %s\n" id s)
        (List.rev !order);
      Array.iter (fun l -> output_string oc l; output_char oc '\n') lines;
      output_string oc ".\n")

(* --- loading ---------------------------------------------------------- *)

let fail_line n msg = failwith (Printf.sprintf "Schedule.load: line %d: %s" n msg)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let next () =
        match input_line ic with
        | l ->
            incr lineno;
            Some l
        | exception End_of_file -> None
      in
      (match next () with
      | Some "sa-sched 1" -> ()
      | Some l -> fail_line 1 (Printf.sprintf "bad magic %S" l)
      | None -> fail_line 0 "empty file");
      let meta = ref [] in
      let sites : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let decisions = ref [] in
      let terminated = ref false in
      let site id =
        match Hashtbl.find_opt sites id with
        | Some s -> s
        | None -> fail_line !lineno (Printf.sprintf "unknown site %d" id)
      in
      let int_of s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> fail_line !lineno (Printf.sprintf "bad integer %S" s)
      in
      let hex_of s =
        match Int64.of_string_opt ("0x" ^ s) with
        | Some v -> v
        | None -> fail_line !lineno (Printf.sprintf "bad hex %S" s)
      in
      let rec loop () =
        match next () with
        | None -> ()
        | Some "." -> terminated := true
        | Some line ->
            (match String.split_on_char ' ' line with
            | "m" :: key :: rest ->
                meta := (key, String.concat " " rest) :: !meta
            | [ "s"; id; name ] -> Hashtbl.replace sites (int_of id) name
            | [ "p"; sid; arity; default; choice ] ->
                let arity = int_of arity
                and default = int_of default
                and choice = int_of choice in
                if arity < 1 || default < 0 || default >= arity || choice < 0
                   || choice >= arity
                then fail_line !lineno "pick out of range";
                decisions :=
                  Pick { site = site (int_of sid); arity; default; choice }
                  :: !decisions
            | [ "d"; sid; default; value ] ->
                decisions :=
                  Draw
                    {
                      site = site (int_of sid);
                      default = hex_of default;
                      value = hex_of value;
                    }
                  :: !decisions
            | _ -> fail_line !lineno (Printf.sprintf "unparseable %S" line));
            loop ()
      in
      loop ();
      if not !terminated then
        fail_line !lineno "missing terminator (truncated file?)";
      {
        meta = List.rev !meta;
        decisions = Array.of_list (List.rev !decisions);
      })
