module IntSet = Set.Make (Int)

(* The clock suffix appended by [Sim.stall], and the exact counts embedded
   in an invariant message ("holds 2, yet 2 sit free"), vary with the path
   a masked replay takes to the same logical violation; cut the former and
   normalize digit runs so "the same violation" is a stable predicate over
   the check name and its structure. *)
let violation_key msg =
  let line =
    match String.index_opt msg '\n' with
    | Some i -> String.sub msg 0 i
    | None -> msg
  in
  let marker = " [clock=" in
  let mlen = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then line
    else if String.sub line i mlen = marker then String.sub line 0 i
    else find (i + 1)
  in
  let line = find 0 in
  let b = Buffer.create (String.length line) in
  let in_digits = ref false in
  String.iter
    (fun c ->
      if c >= '0' && c <= '9' then begin
        if not !in_digits then Buffer.add_char b '#';
        in_digits := true
      end
      else begin
        in_digits := false;
        Buffer.add_char b c
      end)
    line;
  Buffer.contents b

type result = {
  schedule : Schedule.t;
  run : Search.run_result;
  key : string;
  kept : int;
  dropped : int;
  tests : int;
}

(* Classic ddmin over the divergence-index set, with a replay budget.  The
   granularity doubles when neither a chunk nor a complement reproduces,
   and the whole reduction restarts at granularity 2 whenever the set
   shrinks. *)
let ddmin ~test ~max_tests items =
  let tests = ref 0 in
  let check set =
    if !tests >= max_tests then false
    else begin
      incr tests;
      test set
    end
  in
  let split set n =
    let arr = Array.of_list (IntSet.elements set) in
    let len = Array.length arr in
    List.init n (fun i ->
        let lo = i * len / n and hi = (i + 1) * len / n in
        let chunk = ref IntSet.empty in
        for j = lo to hi - 1 do
          chunk := IntSet.add arr.(j) !chunk
        done;
        !chunk)
    |> List.filter (fun s -> not (IntSet.is_empty s))
  in
  let rec go set n =
    let len = IntSet.cardinal set in
    if len <= 1 || !tests >= max_tests then set
    else begin
      let chunks = split set n in
      match List.find_opt check chunks with
      | Some chunk -> go chunk 2
      | None -> (
          let complements =
            if n <= 2 then []
            else List.map (fun c -> IntSet.diff set c) chunks
          in
          match List.find_opt check complements with
          | Some compl -> go compl (max (n - 1) 2)
          | None ->
              if n < len then go set (min len (2 * n)) else set)
    end
  in
  let minimal = go items 2 in
  (minimal, !tests)

(* Divergences bucketed by decision shape — all draws, all picks, each
   site — tried smallest-first as a pre-reduction before ddmin.  A seeded
   violation is usually driven by one site class (say, the injector's
   [inject:demand-drop] draws); finding the class in a handful of replays
   saves ddmin hundreds of chunk tests that a flat start would waste. *)
let site_groups (failing : Schedule.t) divergences =
  let tbl = Hashtbl.create 8 in
  let add key i =
    let cur =
      match Hashtbl.find_opt tbl key with
      | Some s -> s
      | None -> IntSet.empty
    in
    Hashtbl.replace tbl key (IntSet.add i cur)
  in
  IntSet.iter
    (fun i ->
      match failing.Schedule.decisions.(i) with
      | Schedule.Pick p ->
          add "picks" i;
          add ("site:" ^ p.site) i
      | Schedule.Draw d ->
          add "draws" i;
          add ("site:" ^ d.site) i)
    divergences;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.filter (fun s ->
         IntSet.cardinal s < IntSet.cardinal divergences)
  |> List.sort (fun a b ->
         compare (IntSet.cardinal a) (IntSet.cardinal b))

let shrink ?(max_tests = 400) ~spec (failing : Schedule.t) =
  let divergences = IntSet.of_list (Schedule.divergences failing) in
  let replay_with set =
    let active i = IntSet.mem i set in
    let r, _ =
      Search.replay ~mode:Chooser.Lenient ~active spec failing
    in
    r
  in
  match (replay_with divergences).Search.outcome with
  | Search.Completed | Search.No_completion _ ->
      Error "the schedule does not reproduce a violation"
  | Search.Violation msg0 ->
      let key = violation_key msg0 in
      let used = ref 0 in
      let test set =
        match (replay_with set).Search.outcome with
        | Search.Violation msg -> violation_key msg = key
        | _ -> false
      in
      let start =
        let candidates = site_groups failing divergences in
        let rec try_groups = function
          | [] -> divergences
          | g :: rest ->
              if !used >= max_tests then divergences
              else begin
                incr used;
                if test g then g else try_groups rest
              end
        in
        try_groups candidates
      in
      let minimal, dd_tests =
        ddmin ~test ~max_tests:(max 0 (max_tests - !used)) start
      in
      let tests = !used + dd_tests in
      (* Re-record the minimal run so the shrunk schedule stands alone:
         its decisions are the minimal run's own, not a masked view of the
         original's, and so replay strictly. *)
      let inner, _ =
        Chooser.replaying ~mode:Chooser.Lenient
          ~active:(fun i -> IntSet.mem i minimal)
          failing
      in
      let run, schedule = Search.record ~inner spec in
      (match run.Search.outcome with
      | Search.Violation msg when violation_key msg = key ->
          Ok
            {
              schedule;
              run;
              key;
              kept = IntSet.cardinal minimal;
              dropped =
                IntSet.cardinal divergences - IntSet.cardinal minimal;
              tests;
            }
      | o ->
          Error
            (Printf.sprintf
               "minimal run did not reproduce the violation (got %s)"
               (Search.outcome_name o)))
