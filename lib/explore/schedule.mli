(** Serialized schedule decisions ([.sched] files).

    A schedule is the complete decision sequence of one run — every choice
    point the {!Sa_engine.Sim.chooser} was consulted at, in consultation
    order — plus a small key/value header (workload parameters, the run
    digest, the outcome).  Re-driving the same workload from a schedule
    reproduces the run exactly; see {!Chooser.replaying}.

    The file format is a line-oriented text format with an interned site
    table, so a schedule of thousands of decisions stays compact and
    diff-able:
    {v
    sa-sched 1
    m seed 42
    s 0 sim-order
    p 0 3 0 2
    d 1 1a2b 1a2b
    .
    v}
    [m] lines carry header metadata, [s] lines intern site names, [p] lines
    are {!Pick}s ([site arity default choice]), [d] lines are {!Draw}s
    ([site default value], hex), and the final ["."] guards against
    truncation. *)

type decision =
  | Pick of { site : string; arity : int; default : int; choice : int }
      (** an ordering choice among [arity] alternatives *)
  | Draw of { site : string; default : int64; value : int64 }
      (** a 64-bit RNG draw; [default] is what the generator produced,
          [value] what the run used *)

type t = {
  meta : (string * string) list;  (** ordered header key/value pairs *)
  decisions : decision array;
}

val empty : t

val length : t -> int
(** Number of decisions. *)

val picks : t -> int
(** Number of {!Pick} decisions. *)

val divergent : decision -> bool
(** True iff the decision's value differs from its default — the run
    departed from the unperturbed schedule at this point. *)

val divergences : t -> int list
(** Indices of divergent decisions, ascending.  The shrinker minimizes this
    set. *)

val meta_find : t -> string -> string option

val with_meta : t -> (string * string) list -> t
(** Replace the header. *)

val save : string -> t -> unit
(** Write to a file.  Newlines in metadata values are replaced by spaces. *)

val load : string -> t
(** Parse a saved schedule.  Raises [Failure] with a line diagnostic on any
    malformed or truncated input. *)

val pp_decision : Format.formatter -> decision -> unit
