module Sim = Sa_engine.Sim
module Rng = Sa_engine.Rng

let default : Sim.chooser =
  {
    Sim.ch_pick = (fun ~site:_ ~arity:_ ~default -> default);
    ch_draw = (fun ~site:_ ~default -> default);
  }

let random_walk ?(draws = 0.2) ~seed () =
  let rng = Rng.create (seed lxor 0x5a1cede) in
  {
    Sim.ch_pick = (fun ~site:_ ~arity ~default:_ -> Rng.int rng arity);
    ch_draw =
      (fun ~site:_ ~default ->
        (* Occasionally re-randomize an interposed RNG draw: this shifts
           injector timing and kernel random decisions, exploring the
           coarse-timing axis the same-instant picks cannot reach. *)
        if draws > 0.0 && Rng.float rng 1.0 < draws then Rng.bits64 rng
        else default);
  }

let pct ~seed ~depth ~length =
  let rng = Rng.create (seed lxor 0x9c7b0) in
  let length = max 1 length in
  let change = Hashtbl.create 8 in
  for _ = 1 to depth do
    Hashtbl.replace change (Rng.int rng length) ()
  done;
  let prio = Hashtbl.create 8 in
  let site_prio site =
    match Hashtbl.find_opt prio site with
    | Some p -> p
    | None ->
        let p = if Rng.int rng 10 < 7 then 0 else 1 + Rng.int rng 2 in
        Hashtbl.replace prio site p;
        p
  in
  let picks = ref 0 in
  {
    Sim.ch_pick =
      (fun ~site ~arity ~default:_ ->
        let i = !picks in
        incr picks;
        if Hashtbl.mem change i then Rng.int rng arity
        else min (site_prio site) (arity - 1));
    ch_draw = (fun ~site:_ ~default -> default);
  }

(* --- recording -------------------------------------------------------- *)

type recording = { mutable rev : Schedule.decision list }

let recording ?(inner = default) () =
  let r = { rev = [] } in
  let ch =
    {
      Sim.ch_pick =
        (fun ~site ~arity ~default ->
          let c = inner.Sim.ch_pick ~site ~arity ~default in
          let c = if c < 0 || c >= arity then default else c in
          r.rev <- Schedule.Pick { site; arity; default; choice = c } :: r.rev;
          c);
      ch_draw =
        (fun ~site ~default ->
          let v = inner.Sim.ch_draw ~site ~default in
          r.rev <- Schedule.Draw { site; default; value = v } :: r.rev;
          v);
    }
  in
  (r, ch)

let recorded r =
  { Schedule.meta = []; decisions = Array.of_list (List.rev r.rev) }

(* --- replay ----------------------------------------------------------- *)

type replay_mode = Strict | Lenient

exception Divergence of { at : int; reason : string }

let replaying ?(mode = Strict) ?(active = fun _ -> true)
    (sched : Schedule.t) =
  let n = Array.length sched.Schedule.decisions in
  let cursor = ref 0 in
  let diverged = ref false in
  let mismatch at reason =
    match mode with
    | Strict -> raise (Divergence { at; reason })
    | Lenient -> diverged := true
  in
  let ch_pick ~site ~arity ~default =
    if !diverged then default
    else if !cursor >= n then begin
      mismatch !cursor
        (Printf.sprintf "schedule exhausted; run reached pick %s/%d" site
           arity);
      default
    end
    else begin
      let i = !cursor in
      match sched.Schedule.decisions.(i) with
      | Schedule.Pick p when p.site = site && p.arity = arity ->
          cursor := i + 1;
          if active i && p.choice < arity then p.choice else default
      | d ->
          mismatch i
            (Format.asprintf "recorded %a; run reached pick %s/%d"
               Schedule.pp_decision d site arity);
          default
    end
  in
  let ch_draw ~site ~default =
    if !diverged then default
    else if !cursor >= n then begin
      mismatch !cursor
        (Printf.sprintf "schedule exhausted; run reached draw %s" site);
      default
    end
    else begin
      let i = !cursor in
      match sched.Schedule.decisions.(i) with
      | Schedule.Draw d when d.site = site ->
          cursor := i + 1;
          if active i then d.value else default
      | d ->
          mismatch i
            (Format.asprintf "recorded %a; run reached draw %s"
               Schedule.pp_decision d site);
          default
    end
  in
  ({ Sim.ch_pick; ch_draw }, fun () -> !cursor)
