module Time = Sa_engine.Time
module Sim = Sa_engine.Sim
module Trace = Sa_engine.Trace
module Kconfig = Sa_kernel.Kconfig
module Kernel = Sa_kernel.Kernel
module System = Sa.System
module Server = Sa_workload.Server
module Recorder = Sa_workload.Recorder
module Injector = Sa_fault.Injector
module Invariant = Sa_fault.Invariant
module Campaign = Sa_fault.Campaign

type workload = Server | Chaos

type spec = {
  workload : workload;
  seed : int;
  cpus : int;
  requests : int;
  horizon : Time.span;
  inject : bool;
  inject_kinds : Injector.kind list;
  drop_gap_us : float;
}

let default_spec =
  {
    workload = Server;
    seed = 1;
    cpus = 4;
    requests = 40;
    horizon = Time.s 10;
    inject = true;
    inject_kinds = Injector.default.Injector.kinds;
    drop_gap_us = Injector.default.Injector.drop_gap_us;
  }

let injector_config spec =
  {
    Injector.default with
    Injector.kinds = spec.inject_kinds;
    drop_gap_us = spec.drop_gap_us;
  }

let workload_name = function Server -> "server" | Chaos -> "chaos"

let workload_of_name = function
  | "server" -> Some Server
  | "chaos" -> Some Chaos
  | _ -> None

type outcome = Completed | Violation of string | No_completion of string

let outcome_name = function
  | Completed -> "ok"
  | Violation _ -> "violation"
  | No_completion _ -> "no-completion"

type run_result = {
  outcome : outcome;
  digest : string;
  adjacencies : (string * string) list;
  injected : (string * int) list;
  summary : Server.summary option;
}

(* --- interleaving coverage ------------------------------------------- *)

let all_adjacencies = 16

let upcall_prefix = "upcall:"

(* Consecutive pairs of delivered Table-2 upcall events, across the whole
   system: which event kinds the explored interleaving managed to place
   next to each other. *)
let coverage_sink acc =
  let prev = ref None in
  fun (r : Trace.record) ->
    if r.Trace.category = Trace.Upcall && r.Trace.kind = Trace.Span_begin
    then begin
      let np = String.length upcall_prefix in
      if
        String.length r.Trace.name > np
        && String.sub r.Trace.name 0 np = upcall_prefix
      then begin
        let ev =
          String.sub r.Trace.name np (String.length r.Trace.name - np)
        in
        (match !prev with
        | Some p -> Hashtbl.replace acc (p, ev) ()
        | None -> ());
        prev := Some ev
      end
    end

let adjacency_list acc =
  Hashtbl.fold (fun pair () l -> pair :: l) acc [] |> List.sort compare

(* --- run digest ------------------------------------------------------- *)

let digest_of ~stamps ~final_ns ~kstats ~injected ~outcome =
  let b = Buffer.create 512 in
  List.iter
    (fun (id, t) ->
      Buffer.add_string b (Printf.sprintf "s%d@%d;" id (Time.to_ns t)))
    stamps;
  let k = kstats in
  Buffer.add_string b
    (Printf.sprintf "k%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d;"
       k.Kernel.upcalls k.Kernel.upcall_events k.Kernel.preemptions
       k.Kernel.reallocations k.Kernel.io_blocks k.Kernel.kt_dispatches
       k.Kernel.kt_timeslices k.Kernel.daemon_wakeups k.Kernel.io_faults
       k.Kernel.io_retries k.Kernel.spurious_fired k.Kernel.spurious_dropped
       k.Kernel.chaos_preempts);
  List.iter
    (fun (name, n) -> Buffer.add_string b (Printf.sprintf "i%s=%d;" name n))
    injected;
  Buffer.add_string b (Printf.sprintf "t%d;" final_ns);
  (match outcome with
  | Completed -> Buffer.add_string b "ok"
  | Violation m -> Buffer.add_string b ("V:" ^ m)
  | No_completion m -> Buffer.add_string b ("N:" ^ m));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- the two workloads ------------------------------------------------ *)

let install sim ~chooser ~trace_sink adj =
  (match chooser with Some c -> Sim.set_chooser sim (Some c) | None -> ());
  Trace.add_sink (Sim.trace sim) (coverage_sink adj);
  match trace_sink with
  | Some s -> Trace.add_sink (Sim.trace sim) s
  | None -> ()

let run_server ?chooser ?trace_sink spec =
  let kcfg = { Kconfig.default with Kconfig.seed = spec.seed } in
  let sys = System.create ~cpus:spec.cpus ~kconfig:kcfg () in
  let adj = Hashtbl.create 32 in
  install (System.sim sys) ~chooser ~trace_sink adj;
  let params =
    { Server.default_params with Server.requests = spec.requests;
      seed = spec.seed }
  in
  let recorder = Recorder.create () in
  let _job =
    System.submit sys ~backend:`Fastthreads_on_sa ~name:"server"
      ~observer:(Recorder.observer recorder)
      (Server.program params)
  in
  let _checker =
    Invariant.attach ~period:(Time.ms 1) ~label:"explore" ~seed:spec.seed
      sys
  in
  let inj =
    if spec.inject then
      Some
        (Injector.attach ~config:(injector_config spec) ~seed:spec.seed sys)
    else None
  in
  let outcome =
    match System.run ~horizon:spec.horizon sys with
    | () -> Completed
    | exception Sim.Stalled msg -> Violation msg
    | exception Failure msg -> No_completion msg
  in
  Option.iter Injector.detach inj;
  let injected =
    match inj with Some i -> Injector.injected i | None -> []
  in
  let stamps = Recorder.stamps recorder in
  let digest =
    digest_of ~stamps
      ~final_ns:(Time.to_ns (Sim.now (System.sim sys)))
      ~kstats:(Kernel.stats (System.kernel sys))
      ~injected ~outcome
  in
  let summary =
    match Server.summarize ~allow_incomplete:true recorder params with
    | s -> Some s
    | exception Failure _ -> None
  in
  { outcome; digest; adjacencies = adjacency_list adj; injected; summary }

let run_chaos ?chooser ?trace_sink spec =
  let adj = Hashtbl.create 32 in
  let sys_ref = ref None in
  let on_system sys =
    sys_ref := Some sys;
    install (System.sim sys) ~chooser ~trace_sink adj
  in
  let config =
    { Campaign.default with Campaign.cpus = spec.cpus;
      horizon = spec.horizon; injector = injector_config spec }
  in
  let r =
    Campaign.run_seed ~config ~on_system ~mode:Kconfig.Explicit_allocation
      spec.seed
  in
  let sys =
    match !sys_ref with
    | Some s -> s
    | None -> failwith "Search.run_chaos: campaign never built a system"
  in
  let outcome =
    match r.Campaign.outcome with
    | Campaign.Completed _ -> Completed
    | Campaign.Violation m -> Violation m
    | Campaign.No_completion m -> No_completion m
  in
  let digest =
    digest_of ~stamps:[]
      ~final_ns:(Time.to_ns (Sim.now (System.sim sys)))
      ~kstats:r.Campaign.kstats ~injected:r.Campaign.injected ~outcome
  in
  {
    outcome;
    digest;
    adjacencies = adjacency_list adj;
    injected = r.Campaign.injected;
    summary = None;
  }

let run ?chooser ?trace_sink spec =
  match spec.workload with
  | Server -> run_server ?chooser ?trace_sink spec
  | Chaos -> run_chaos ?chooser ?trace_sink spec

let record ?(inner = Chooser.default) ?trace_sink spec =
  let state, ch = Chooser.recording ~inner () in
  let r = run ~chooser:ch ?trace_sink spec in
  (r, Chooser.recorded state)

let replay ?(mode = Chooser.Strict) ?active ?trace_sink spec sched =
  let ch, consumed = Chooser.replaying ~mode ?active sched in
  let r = run ~chooser:ch ?trace_sink spec in
  (r, consumed ())

(* --- schedule metadata ------------------------------------------------ *)

let meta_of_spec spec ~strategy =
  [
    ("workload", workload_name spec.workload);
    ("seed", string_of_int spec.seed);
    ("cpus", string_of_int spec.cpus);
    ("requests", string_of_int spec.requests);
    ("horizon_ns", string_of_int spec.horizon);
    ("inject", string_of_bool spec.inject);
    ( "inject_kinds",
      String.concat "," (List.map Injector.kind_name spec.inject_kinds) );
    ("drop_gap_us", Printf.sprintf "%g" spec.drop_gap_us);
    ("strategy", strategy);
  ]

let spec_of_meta meta =
  let find k = List.assoc_opt k meta in
  let int k d = match find k with
    | Some v -> (match int_of_string_opt v with Some v -> v | None -> d)
    | None -> d
  in
  let d = default_spec in
  {
    workload =
      (match Option.bind (find "workload") workload_of_name with
      | Some w -> w
      | None -> d.workload);
    seed = int "seed" d.seed;
    cpus = int "cpus" d.cpus;
    requests = int "requests" d.requests;
    horizon = int "horizon_ns" d.horizon;
    inject =
      (match find "inject" with
      | Some v -> v <> "false"
      | None -> d.inject);
    inject_kinds =
      (match find "inject_kinds" with
      | Some "" -> []
      | Some v ->
          String.split_on_char ',' v
          |> List.filter_map Injector.kind_of_name
      | None -> d.inject_kinds);
    drop_gap_us =
      (match Option.bind (find "drop_gap_us") float_of_string_opt with
      | Some g -> g
      | None -> d.drop_gap_us);
  }

(* --- search loop ------------------------------------------------------ *)

type strategy = Walk | Pct of int

let strategy_name = function
  | Walk -> "walk"
  | Pct d -> Printf.sprintf "pct-%d" d

type report = {
  baseline : run_result;
  baseline_sched : Schedule.t;
  runs : int;
  violations : int;
  no_completions : int;
  distinct_digests : int;
  coverage : (string * string) list;
  failing : (int * run_result * Schedule.t) option;
}

let explore ?(on_run = fun _ _ -> ()) ~strategy ~schedules spec =
  let baseline, baseline_sched = record spec in
  let picks = Schedule.picks baseline_sched in
  let digests = Hashtbl.create 32 in
  Hashtbl.replace digests baseline.digest ();
  let cov = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace cov p ()) baseline.adjacencies;
  let violations = ref 0 in
  let no_completions = ref 0 in
  let runs = ref 0 in
  let failing = ref None in
  let i = ref 1 in
  while !i <= schedules && !failing = None do
    (* Derive the strategy seed from the spec seed and the run index so a
       printed (seed, strategy, index) triple is enough to reproduce. *)
    let sseed = (spec.seed * 1_000_003) + !i in
    let inner =
      match strategy with
      | Walk -> Chooser.random_walk ~seed:sseed ()
      | Pct depth -> Chooser.pct ~seed:sseed ~depth ~length:picks
    in
    let r, sched = record ~inner spec in
    incr runs;
    on_run !i r;
    Hashtbl.replace digests r.digest ();
    List.iter (fun p -> Hashtbl.replace cov p ()) r.adjacencies;
    (match r.outcome with
    | Violation _ ->
        incr violations;
        failing := Some (sseed, r, sched)
    | No_completion _ -> incr no_completions
    | Completed -> ());
    incr i
  done;
  {
    baseline;
    baseline_sched;
    runs = !runs;
    violations = !violations;
    no_completions = !no_completions;
    distinct_digests = Hashtbl.length digests;
    coverage = adjacency_list cov;
    failing = !failing;
  }
