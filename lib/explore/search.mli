(** Run driver and search loop for schedule exploration.

    A {!spec} names a deterministic workload configuration; {!run} executes
    it once under an optional chooser and reduces the run to a
    {!run_result}: the outcome, a digest over stamps + kernel statistics +
    injected-event counts + final clock (two runs with equal digests took
    the same trajectory for every observable we track), and the Table-2
    upcall adjacencies the run exercised (which consecutive upcall-event
    pairs occurred — the interleaving-coverage measure).

    {!explore} drives the search: one recorded probe run under the default
    chooser (the baseline — also how the pick count for PCT change points
    is estimated), then [schedules] recorded runs under the chosen
    strategy, stopping at the first violation so the failing schedule can
    be handed to {!Shrink}. *)

module Time = Sa_engine.Time

type workload = Server | Chaos

type spec = {
  workload : workload;
  seed : int;  (** kernel + workload + injector seed *)
  cpus : int;
  requests : int;  (** server workload size (ignored by chaos) *)
  horizon : Time.span;
  inject : bool;  (** attach the fault injector (server workload) *)
  inject_kinds : Sa_fault.Injector.kind list;
      (** fault mix; add [Demand_drop] to seed a findable violation *)
  drop_gap_us : float;  (** mean gap between armed reallocation drops *)
}

val default_spec : spec
(** Server workload, seed 1, 4 cpus, 40 requests, 10 s horizon, injection
    on with the survivable default mix. *)

val workload_name : workload -> string
val workload_of_name : string -> workload option

type outcome = Completed | Violation of string | No_completion of string

val outcome_name : outcome -> string
(** ["ok"], ["violation"] or ["no-completion"]. *)

type run_result = {
  outcome : outcome;
  digest : string;  (** hex MD5 of the run's observable trajectory *)
  adjacencies : (string * string) list;
      (** distinct ordered pairs of consecutive Table-2 upcall events *)
  injected : (string * int) list;
  summary : Sa_workload.Server.summary option;
      (** partial response-time summary (server workload only) *)
}

val run :
  ?chooser:Sa_engine.Sim.chooser ->
  ?trace_sink:(Sa_engine.Trace.record -> unit) ->
  spec ->
  run_result
(** One run.  Catches {!Sa_engine.Sim.Stalled} (→ [Violation]) and
    [Failure] (→ [No_completion]); anything else propagates. *)

val record :
  ?inner:Sa_engine.Sim.chooser ->
  ?trace_sink:(Sa_engine.Trace.record -> unit) ->
  spec ->
  run_result * Schedule.t
(** Run under [inner] (default the identity chooser) wrapped in a recorder;
    returns the result and the decision sequence (no metadata — see
    {!meta_of_spec}). *)

val replay :
  ?mode:Chooser.replay_mode ->
  ?active:(int -> bool) ->
  ?trace_sink:(Sa_engine.Trace.record -> unit) ->
  spec ->
  Schedule.t ->
  run_result * int
(** Re-drive a run from a schedule; also returns the number of decisions
    consumed.  [Strict] mode (the default) raises {!Chooser.Divergence} on
    any mismatch. *)

(** {1 Schedule metadata} *)

val meta_of_spec : spec -> strategy:string -> (string * string) list
(** Header fields encoding the spec (plus the strategy name), so a saved
    schedule is self-describing. *)

val spec_of_meta : (string * string) list -> spec
(** Reconstruct a spec from a schedule header, falling back to
    {!default_spec} for missing fields. *)

(** {1 Search} *)

type strategy = Walk | Pct of int  (** depth *)

val strategy_name : strategy -> string

type report = {
  baseline : run_result;
  baseline_sched : Schedule.t;
  runs : int;  (** perturbed runs executed (excluding the baseline) *)
  violations : int;
  no_completions : int;
  distinct_digests : int;  (** including the baseline *)
  coverage : (string * string) list;  (** union of adjacencies over all runs *)
  failing : (int * run_result * Schedule.t) option;
      (** first violation: strategy seed, result, recorded schedule *)
}

val explore :
  ?on_run:(int -> run_result -> unit) ->
  strategy:strategy ->
  schedules:int ->
  spec ->
  report
(** Probe baseline + up to [schedules] perturbed recorded runs (strategy
    seeded from [spec.seed] and the run index), stopping at the first
    violation.  [on_run] observes each perturbed run as it completes. *)

val all_adjacencies : int
(** Size of the full Table-2 adjacency space (4 events × 4 events). *)
