(** Strategy choosers over the engine's choice points.

    A {!Sa_engine.Sim.chooser} answers every choice point of a run: the
    same-instant event ordering in the simulator ([sim-order]), the kernel's
    allocator rotation ([alloc-rotation]), I/O completion deferral and
    spurious-completion targeting ([io-complete], [io-spurious]), the
    kernel's own RNG draws ([kernel-rng]) and the fault injector's streams
    ([inject:<kind>]).  This module provides the search strategies and the
    record/replay combinators built over that interface. *)

module Sim = Sa_engine.Sim

val default : Sim.chooser
(** Answers every choice point with its default — a run under [default] is
    bit-for-bit identical to a run with no chooser installed. *)

val random_walk : ?draws:float -> seed:int -> unit -> Sim.chooser
(** Seeded random walk: every ordering pick is uniform over its
    alternatives, and each interposed RNG draw is re-randomized with
    probability [draws] (default 0.2; pass [~draws:0.0] to perturb the
    interleaving only and leave the injection schedule untouched).
    Perturbed draws move injector and kernel-RNG timing — the coarse-timing
    axis same-instant reordering cannot reach. *)

val pct : seed:int -> depth:int -> length:int -> Sim.chooser
(** PCT-style bounded search.  Each site receives a seeded priority
    displacement (0 with probability 0.7, else 1–2) applied to every pick
    at that site, and [depth] change points are drawn uniformly from
    [\[0, length)] (pick indices, estimated from a probe run): at a change
    point the pick is fully random.  Most of the run thus follows a single
    systematic skew of the FIFO order, with [depth] adversarial switches —
    the analogue of PCT's random thread priorities plus [d] priority-change
    points, biased toward the upcall/critical-section races a purely
    uniform walk rarely assembles.  RNG draws keep their defaults. *)

(** {1 Recording} *)

type recording

val recording : ?inner:Sim.chooser -> unit -> recording * Sim.chooser
(** [recording ~inner ()] wraps [inner] (default {!default}) so that every
    consulted choice point is appended to a decision log.  Out-of-range
    answers from [inner] are normalized to the default before being
    recorded, so a recorded schedule always replays verbatim. *)

val recorded : recording -> Schedule.t
(** The decisions logged so far, in consultation order (no metadata). *)

(** {1 Replay} *)

type replay_mode =
  | Strict
      (** any mismatch between the schedule and the run's actual choice
          points raises {!Divergence} — used to cross-check a replay *)
  | Lenient
      (** on mismatch, fall back to defaults for the rest of the run — used
          by the shrinker, whose masked replays legitimately change the
          downstream decision sequence *)

exception Divergence of { at : int; reason : string }

val replaying :
  ?mode:replay_mode ->
  ?active:(int -> bool) ->
  Schedule.t ->
  Sim.chooser * (unit -> int)
(** [replaying sched] re-drives a run from its recorded decisions,
    returning the chooser and a function reporting how many decisions have
    been consumed.  Decision [i] is applied only when [active i] (default
    always); an inactive decision is consumed but answered with the run's
    own default, which is how the shrinker masks divergences.  In [Strict]
    mode (the default) a site/arity mismatch, or running past the end of
    the schedule, raises {!Divergence}. *)
