module P = Sa_program.Program
module B = P.Build

type 'msg t = {
  box : 'msg Queue.t;
  lock : P.Mutex.t;
  arrivals : P.Sem.t;  (* one V per message *)
}

let create ?(name = "actor") () =
  {
    box = Queue.create ();
    lock = P.Mutex.create ~name:(name ^ "-mailbox") ();
    arrivals = P.Sem.create ~name:(name ^ "-arrivals") ~initial:0 ();
  }

let pending t = Queue.length t.box

(* [send] and [receive] touch the host-level mailbox queue from their
   continuations, so both are force-dependent ([B.dynamic]): eager
   compilation would move messages at compile time. *)
let send t msg =
  let open B in
  dynamic
    (let* () = acquire t.lock in
     let* () = compute (Sa_engine.Time.us 2) in
     Queue.add msg t.box;
     let* () = release t.lock in
     sem_v t.arrivals)

let receive t =
  let open B in
  dynamic
    (let* () = sem_p t.arrivals in
     let* () = acquire t.lock in
     let* () = compute (Sa_engine.Time.us 2) in
     match Queue.take_opt t.box with
     | Some msg ->
         let* () = release t.lock in
         return msg
     | None ->
         (* impossible: the semaphore counts exactly the enqueued messages *)
         invalid_arg "Actor.receive: semaphore/mailbox mismatch")

let spawn_handler t ~work_per_message ?(handle = fun _ -> ()) ~stop () =
  let open B in
  let rec behave () =
    let* msg = receive t in
    let* () = compute work_per_message in
    handle msg;
    if stop msg then return () else behave ()
  in
  fork (B.to_program (behave ()))
