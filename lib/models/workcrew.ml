module Time = Sa_engine.Time
module P = Sa_program.Program
module B = P.Build

type task = { work : Time.span; label : int; children : task list }

let task ?(label = 0) ?(children = []) work = { work; label; children }

let rec count acc t = List.fold_left count (acc + 1) t.children
let total_tasks ts = List.fold_left count 0 ts

let rec work_of acc t = List.fold_left work_of (acc + t.work) t.children
let total_work ts = List.fold_left work_of 0 ts

(* The bag is host-level mutable state captured by the program's
   continuations.  Continuations are forced at simulation time (each [let*]
   body runs when the preceding operation completes), so pops and pushes
   happen at the correct simulated instants; the DSL mutex serializes them
   so contention costs simulated time.  [outstanding] counts tasks popped
   but not yet finished: the crew only stops when the bag is empty AND
   nothing is in flight, since a finishing task may still add children. *)
let run ~workers ?(on_task = fun _ -> ()) tasks =
  if workers <= 0 then invalid_arg "Workcrew.run: workers";
  let bag = Queue.create () in
  List.iter (fun t -> Queue.add t bag) tasks;
  let outstanding = ref 0 in
  let lock = P.Mutex.create ~name:"crew-bag" () in
  let open B in
  let finish_task t =
    let* () =
      when_ (t.children <> [])
        (critical lock
           (let* () = compute (Time.us 2 * List.length t.children) in
            return (List.iter (fun c -> Queue.add c bag) t.children)))
    in
    decr outstanding;
    on_task t.label;
    return ()
  in
  let rec worker_loop () =
    let* () = acquire lock in
    match Queue.take_opt bag with
    | None ->
        if !outstanding = 0 then release lock (* quiescent: exit *)
        else
          (* in-flight tasks may spawn children: back off and re-check *)
          let* () = release lock in
          let* () = yield in
          worker_loop ()
    | Some t ->
        incr outstanding;
        let* () = release lock in
        let* () = compute t.work in
        let* () = finish_task t in
        worker_loop ()
  in
  (* The loop branches on the host-level bag and [outstanding] counter at
     force time, so the worker program is force-dependent: the [Dynamic]
     marker keeps it (and any tree that forks it) off the eager compiler. *)
  let worker = P.Dynamic (B.to_program (worker_loop ())) in
  B.to_program
    (let* tids =
       let rec go acc i =
         if i = 0 then return acc
         else
           let* tid = fork worker in
           go (tid :: acc) (i - 1)
       in
       go [] workers
     in
     iter_list tids (fun tid -> join tid))
