module P = Sa_program.Program
module B = P.Build

type 'a t = {
  cell : 'a option ref;
  done_sem : P.Sem.t;  (* V'd once at resolution *)
}

let create () =
  { cell = ref None; done_sem = P.Sem.create ~name:"future" ~initial:0 () }

let is_resolved f = !(f.cell) <> None

(* Resolution V's the semaphore once; each toucher that finds the future
   unresolved P's it and immediately V's it again, so every waiter gets
   through — a broadcast built from a counting semaphore. *)
(* Both [resolve] and [get] consult or mutate the host-level cell from
   their continuations, so they are force-dependent: the [B.dynamic]
   marker keeps any containing program on the reference interpreter
   (eager compilation would run these effects at compile time). *)
let resolve fut value =
  let open B in
  dynamic
    (let* () = return (fut.cell := Some value) in
     sem_v fut.done_sem)

let value_of fut =
  match !(fut.cell) with
  | Some v -> v
  | None -> invalid_arg "Future: touched an unresolved future"

let get fut =
  (* [get fut] itself evaluates when the enclosing chain is forced, so
     the resolution check happens at the right simulated instant. *)
  let open B in
  dynamic
    (if is_resolved fut then return (value_of fut)
     else
       let* () = sem_p fut.done_sem in
       (* pass the token on to the next waiter *)
       let* () = sem_v fut.done_sem in
       return (value_of fut))

let spawn ~work f =
  let open B in
  let fut = create () in
  (* head marker: keeps the compiler from evaluating [f ()] eagerly while
     forcing its way to the [resolve] marker *)
  let producer =
    P.Dynamic
      (B.to_program
         (let* () = compute work in
          resolve fut (f ())))
  in
  let* _tid = fork producer in
  return fut

let map2 ~work f a b =
  let open B in
  let fut = create () in
  let producer =
    P.Dynamic
      (B.to_program
         (let* va = get a in
          let* vb = get b in
          let* () = compute work in
          resolve fut (f va vb)))
  in
  let* _tid = fork producer in
  return fut
