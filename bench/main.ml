(* Benchmark harness.

   Two layers:

   1. The paper harness: regenerates every table and figure of the paper's
      evaluation section (Tables 1/4/5, Figures 1/2, the Section 5.2 upcall
      measurements) plus the design-choice ablations, printing measured
      values next to the published ones.  These run in simulated time and
      are deterministic.  With --json the same results are emitted as one
      JSON object on stdout (machine-readable, for recording BENCH_*.json
      trajectories across commits).

   2. Bechamel wall-clock micro-benchmarks: one Test.make per paper table /
      figure (measuring the cost of regenerating it) and a group for the
      simulator's own hot paths (event queue, processor segments, octree
      build, buffer cache).  These are wall-clock measurements and stay
      text-only.

   Usage:
     bench/main.exe                 run the full paper harness (default)
     bench/main.exe table1 figure2  run selected experiments
     bench/main.exe micro           run the Bechamel micro-benchmarks
     bench/main.exe micro --record  write engine-gate baselines (MICRO_BASELINE.txt)
     bench/main.exe micro --check   fail if any gated benchmark regressed >5x
     bench/main.exe all             paper harness + micro-benchmarks
     bench/main.exe scale           32/64-CPU, ~10k-thread fork-join stress
     bench/main.exe serve           24-tenant serving with per-tenant SLOs
     bench/main.exe --json [NAMES]  paper harness (or NAMES) as JSON
     bench/main.exe --json scale    scale stress as JSON (wall time on stderr)
     bench/main.exe --json serve    serving SLO report as JSON (deterministic)
     bench/main.exe cluster         3-machine cluster serving run
     bench/main.exe --json cluster  cluster run as JSON (deterministic) *)

module E = Sa_metrics.Experiments
module R = Sa_metrics.Report
module Nbody = Sa_workload.Nbody

(* ------------------------------------------------------------------ *)
(* Paper experiments as typed results                                  *)
(* ------------------------------------------------------------------ *)

type result =
  | Latency of E.latency_row list
  | Speedup of E.speedup_series list
  | Exec_time of E.exec_time_series list
  | Multiprog of E.multiprog_row list
  | Upcalls of E.upcall_row list
  | Ablation of E.ablation_row list
  | Server of E.server_row list

let experiments : (string * string * (unit -> result)) list =
  [
    ( "table1",
      "Table 1: Thread Operation Latencies (usec)",
      fun () -> Latency (E.table1 ()) );
    ( "table4",
      "Table 4: Thread Operation Latencies (usec), with Scheduler Activations",
      fun () -> Latency (E.table4 ()) );
    ( "figure1",
      "Figure 1: Speedup of N-Body Application vs. Number of Processors, \
       100% of Memory Available",
      fun () -> Speedup (E.figure1 ()) );
    ( "figure2",
      "Figure 2: Execution Time of N-Body Application vs. Amount of \
       Available Memory, 6 Processors",
      fun () -> Exec_time (E.figure2 ()) );
    ( "table5",
      "Table 5: Speedup for N-Body Application, Multiprogramming Level = 2, \
       6 Processors, 100% of Memory Available",
      fun () -> Multiprog (E.table5 ()) );
    ( "upcall",
      "Section 5.2: Upcall Performance (Signal-Wait through the kernel)",
      fun () -> Upcalls (E.upcall_performance ()) );
    ( "ablation-critical",
      "Ablation (S5.1/S4.3): critical-section marking strategy, latency \
       impact",
      fun () -> Ablation (E.ablation_critical_sections ()) );
    ( "ablation-hysteresis",
      "Ablation (S4.2): idle-processor hysteresis before reallocation",
      fun () -> Ablation (E.ablation_hysteresis ~spins_ms:[ 0; 1; 5; 20 ] ())
    );
    ( "ablation-pool",
      "Ablation (S4.3): discarded-scheduler-activation recycling",
      fun () -> Ablation (E.ablation_activation_pooling ()) );
    ( "ablation-rotation",
      "Ablation (S4.1): time-slicing the remainder processor between equal \
       jobs (5 CPUs, 2 jobs)",
      fun () -> Ablation (E.ablation_remainder_rotation ()) );
    ( "ablation-disk",
      "Ablation (S5.3): Figure 2 with a queued disk (contention) instead of \
       the fixed 50 ms block",
      fun () -> Exec_time (E.figure2_disk_contention ()) );
    ( "server",
      "Extension: open-arrival server response times (4 CPUs, 200 requests, \
       80% do 20 ms I/O)",
      fun () -> Server (E.server_latency ()) );
    ( "ablation-warning",
      "Related-work comparison (S6): immediate stop-and-upcall vs the \
       Psyche/Symunix warning protocol (high-priority grant latency)",
      fun () -> Ablation (E.preemption_protocol ()) );
    ( "retrospective",
      "Retrospective: the same systems under 2020s costs (ns-scale user \
       ops, us-scale kernel ops, NVMe I/O) and 1000x finer-grained tasks",
      fun () -> Ablation (E.modern_retrospective ()) );
    ( "ablation-fairness",
      "Ablation (S4.1): allocator fairness in processor-seconds",
      fun () -> Ablation (E.allocator_fairness ()) );
    ( "ablation-priority",
      "Ablation (S4.1): address-space priorities in the allocator",
      fun () -> Ablation (E.space_priority ()) );
  ]

let print_result ~title = function
  | Latency rows -> R.print_latency_table ~title rows
  | Speedup series -> R.print_speedup_series ~title series
  | Exec_time series -> R.print_exec_time_series ~title series
  | Multiprog rows -> R.print_multiprog ~title rows
  | Upcalls rows -> R.print_upcalls ~title rows
  | Ablation rows -> R.print_ablation ~title rows
  | Server rows -> R.print_server ~title rows

(* ------------------------------------------------------------------ *)
(* JSON encoding (hand-rolled: the vocabulary is a handful of rows)    *)
(* ------------------------------------------------------------------ *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf v =
  if Float.is_nan v || Float.abs v = Float.infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.6g" v)

let add_float_opt buf = function
  | None -> Buffer.add_string buf "null"
  | Some v -> add_float buf v

let add_fields buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, add_v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_v buf)
    fields;
  Buffer.add_char buf '}'

let add_list buf add_item items =
  Buffer.add_char buf '[';
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char buf ',';
      add_item buf item)
    items;
  Buffer.add_char buf ']'

let add_result buf result =
  let str s buf = add_json_string buf s in
  let fl v buf = add_float buf v in
  let fl_opt v buf = add_float_opt buf v in
  let int n buf = Buffer.add_string buf (string_of_int n) in
  match result with
  | Latency rows ->
      add_list buf
        (fun buf (r : E.latency_row) ->
          add_fields buf
            [
              ("system", str r.system);
              ("null_fork_us", fl r.null_fork_us);
              ("signal_wait_us", fl r.signal_wait_us);
              ("paper_null_fork", fl_opt r.paper_null_fork);
              ("paper_signal_wait", fl_opt r.paper_signal_wait);
            ])
        rows
  | Speedup series ->
      add_list buf
        (fun buf (s : E.speedup_series) ->
          add_fields buf
            [
              ("series", str s.series);
              ( "points",
                fun buf ->
                  add_list buf
                    (fun buf (p : E.speedup_point) ->
                      add_fields buf
                        [
                          ("processors", int p.processors);
                          ("speedup", fl p.speedup);
                        ])
                    s.points );
            ])
        series
  | Exec_time series ->
      add_list buf
        (fun buf (s : E.exec_time_series) ->
          add_fields buf
            [
              ("series", str s.io_series);
              ( "points",
                fun buf ->
                  add_list buf
                    (fun buf (p : E.exec_time_point) ->
                      add_fields buf
                        [
                          ("memory_percent", int p.memory_percent);
                          ("exec_time_s", fl p.exec_time_s);
                        ])
                    s.io_points );
            ])
        series
  | Multiprog rows ->
      add_list buf
        (fun buf (r : E.multiprog_row) ->
          add_fields buf
            [
              ("system", str r.mp_system);
              ("speedup", fl r.mp_speedup);
              ("paper", fl_opt r.mp_paper);
            ])
        rows
  | Upcalls rows ->
      add_list buf
        (fun buf (r : E.upcall_row) ->
          add_fields buf
            [
              ("config", str r.u_config);
              ("signal_wait_us", fl r.u_signal_wait_us);
              ("paper", fl_opt r.u_paper);
            ])
        rows
  | Ablation rows ->
      add_list buf
        (fun buf (r : E.ablation_row) ->
          add_fields buf
            [
              ("label", str r.a_label);
              ("value", fl r.a_value);
              ("unit", str r.a_unit);
            ])
        rows
  | Server rows ->
      add_list buf
        (fun buf (r : E.server_row) ->
          add_fields buf
            [
              ("system", str r.s_system);
              ("mean_us", fl r.s_mean_us);
              ("p95_us", fl r.s_p95_us);
              ("p99_us", fl r.s_p99_us);
            ])
        rows

let result_kind = function
  | Latency _ -> "latency"
  | Speedup _ -> "speedup"
  | Exec_time _ -> "exec-time"
  | Multiprog _ -> "multiprog"
  | Upcalls _ -> "upcalls"
  | Ablation _ -> "ablation"
  | Server _ -> "server"

let print_json selected =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, title, run) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let result = run () in
      add_json_string buf name;
      Buffer.add_char buf ':';
      add_fields buf
        [
          ("kind", fun buf -> add_json_string buf (result_kind result));
          ("title", fun buf -> add_json_string buf title);
          ("data", fun buf -> add_result buf result);
        ])
    selected;
  Buffer.add_string buf "\n}\n";
  print_string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Scale mode: large machines, many threads                            *)
(* ------------------------------------------------------------------ *)

(* Not a paper experiment: a fork-join stress run on 32/64-processor
   machines with ~10k threads, exercising the kernel paths that must stay
   O(1) (dispatch tables, allocation cursor, idle census) and the
   user-level ready queues.  Deterministic in simulated time; wall-clock
   is reported on stderr so the JSON stays reproducible. *)

type scale_row = {
  sc_cpus : int;
  sc_threads : int;  (* threads forked (the root included) *)
  sc_makespan_ms : float;  (* simulated span, submit -> last completion *)
  sc_throughput : float;  (* completions per simulated second *)
  sc_steals : int;
  sc_upcalls : int;
  sc_dispatches : int;
  sc_reallocations : int;
  sc_events : int;  (* engine events fired (deterministic per schedule) *)
  sc_wall_ms : float;  (* host wall-clock for the run (machine-dependent) *)
  sc_events_per_s_wall : float;  (* engine event throughput against wall *)
  sc_program_steps : int;  (* interpreter operations executed *)
  sc_charge_segments : int;  (* logical charge requests *)
  sc_charge_batches : int;  (* charge events actually issued *)
  sc_spin_ns : int;  (* simulated ns burnt spinning on held cells *)
  sc_recoveries : int;  (* Section 3.3 critical-section recoveries *)
}

let scale_configs = [ (32, 10_000); (64, 10_000) ]

let scale_title =
  "Scale: fork-join stress, FastThreads on Scheduler Activations (32/64 \
   CPUs, ~10k threads)"

let scale_one ~cpus ~threads =
  let module Time = Sa_engine.Time in
  let module System = Sa.System in
  let module Kernel = Sa_kernel.Kernel in
  let module Program = Sa_program.Program in
  let module Ft_core = Sa_uthread.Ft_core in
  let sys = System.create ~cpus () in
  (* Throughput run: nothing reads the trace, so recording it would only
     tax the measurement. *)
  Sa_engine.Trace.set_recording (Sa_engine.Sim.trace (System.sim sys)) false;
  (* Two-level fan-out: the root forks one branch per processor, each
     branch forks its share of leaves, so forking itself runs in
     parallel.  Leaves yield mid-compute to exercise the queue
     disciplines. *)
  let branches = cpus in
  let per_branch = threads / branches in
  let leaf =
    Program.Build.(
      to_program
        (let* () = compute (Time.us 20) in
         let* () = yield in
         compute (Time.us 20)))
  in
  let branch =
    Program.Build.(to_program (repeat per_branch (fun _ -> fork_unit leaf)))
  in
  let prog =
    Program.Build.(to_program (repeat branches (fun _ -> fork_unit branch)))
  in
  let t0 = Unix.gettimeofday () in
  let job = System.submit sys ~backend:`Fastthreads_on_sa ~name:"scale" prog in
  System.run sys;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let elapsed =
    match System.elapsed job with Some e -> e | None -> assert false
  in
  let st = Kernel.stats (System.kernel sys) in
  let ft =
    match System.uthread_stats job with Some s -> s | None -> assert false
  in
  let makespan_ms = Time.span_to_ms elapsed in
  let completed = ft.Ft_core.completions in
  let events = Sa_engine.Sim.events (System.sim sys) in
  let events_per_s_wall = float_of_int events /. (wall_ms /. 1e3) in
  Printf.eprintf
    "scale: %d cpus, %d threads: %.1f ms simulated, %.0f ms wall, %d events \
     (%.2fM events/s wall)\n\
     %!"
    cpus completed makespan_ms wall_ms events (events_per_s_wall /. 1e6);
  {
    sc_cpus = cpus;
    sc_threads = completed;
    sc_makespan_ms = makespan_ms;
    sc_throughput = float_of_int completed /. (makespan_ms /. 1e3);
    sc_steals = ft.Ft_core.steals;
    sc_upcalls = st.Kernel.upcalls;
    sc_dispatches = ft.Ft_core.dispatches;
    sc_reallocations = st.Kernel.reallocations;
    sc_events = events;
    sc_wall_ms = wall_ms;
    sc_events_per_s_wall = events_per_s_wall;
    sc_program_steps = ft.Ft_core.program_steps;
    sc_charge_segments = ft.Ft_core.charge_segments;
    sc_charge_batches = ft.Ft_core.charge_batches;
    sc_spin_ns = ft.Ft_core.cs_spin_ns;
    sc_recoveries = ft.Ft_core.cs_recoveries;
  }

let run_scale () =
  List.map (fun (cpus, threads) -> scale_one ~cpus ~threads) scale_configs

let print_scale_json rows =
  let buf = Buffer.create 1024 in
  let int n buf = Buffer.add_string buf (string_of_int n) in
  let fl v buf = add_float buf v in
  Buffer.add_string buf "{\n";
  add_json_string buf "scale";
  Buffer.add_char buf ':';
  add_fields buf
    [
      ("kind", fun buf -> add_json_string buf "scale");
      ("title", fun buf -> add_json_string buf scale_title);
      ( "data",
        fun buf ->
          add_list buf
            (fun buf r ->
              add_fields buf
                [
                  ("cpus", int r.sc_cpus);
                  ("threads", int r.sc_threads);
                  ("makespan_ms", fl r.sc_makespan_ms);
                  ("throughput_per_s", fl r.sc_throughput);
                  ("steals", int r.sc_steals);
                  ("upcalls", int r.sc_upcalls);
                  ("dispatches", int r.sc_dispatches);
                  ("reallocations", int r.sc_reallocations);
                  ("events_total", int r.sc_events);
                  ("wall_ms", fl r.sc_wall_ms);
                  ("events_per_s_wall", fl r.sc_events_per_s_wall);
                  ("program_steps", int r.sc_program_steps);
                  ("charge_segments", int r.sc_charge_segments);
                  ("charge_batches", int r.sc_charge_batches);
                  ("cs_spin_ns", int r.sc_spin_ns);
                  ("cs_recoveries", int r.sc_recoveries);
                ])
            rows );
    ];
  Buffer.add_string buf "\n}\n";
  print_string (Buffer.contents buf)

let print_scale_text rows =
  Printf.printf "\n%s\n%s\n" scale_title (String.make 78 '-');
  Printf.printf "%6s %8s %12s %14s %8s %8s %10s %7s %9s %8s %11s %9s %9s %7s\n"
    "cpus" "threads" "makespan_ms" "thr/sim-sec" "steals" "upcalls"
    "dispatches" "realloc" "events" "wall_ms" "ev/s-wall" "steps" "segments"
    "batch%";
  List.iter
    (fun r ->
      Printf.printf
        "%6d %8d %12.2f %14.0f %8d %8d %10d %7d %9d %8.1f %11.0f %9d %9d %7.1f\n"
        r.sc_cpus r.sc_threads r.sc_makespan_ms r.sc_throughput r.sc_steals
        r.sc_upcalls r.sc_dispatches r.sc_reallocations r.sc_events r.sc_wall_ms
        r.sc_events_per_s_wall r.sc_program_steps r.sc_charge_segments
        (100.
        *. float_of_int r.sc_charge_batches
        /. float_of_int (max 1 r.sc_charge_segments)))
    rows

(* ------------------------------------------------------------------ *)
(* Serve mode: multi-tenant serving with tail-latency SLOs             *)
(* ------------------------------------------------------------------ *)

(* Pinned configuration: 24 tenants (8 of each class) on 64 processors —
   enough offered load that the space-sharing allocator must preempt, so
   the per-class SLO-violation split (priority-1 interactive tenants
   protected, priority-0 bursty/batch tenants absorbing the contention)
   is visible in the trajectory.  Deterministic: same seed, same JSON. *)

let serve_params =
  {
    Sa_workload.Server.mt_tenants = 24;
    mt_requests = 200;
    mt_classes = Sa_workload.Server.default_classes;
    mt_seed = 11;
    mt_cache_blocks = 0;
  }

let serve_cpus = 64

let serve_title =
  "Serve: multi-tenant serving, 24 tenants x 200 requests, 64 CPUs, \
   per-tenant tail latency vs SLO"

let run_serve () =
  let t0 = Unix.gettimeofday () in
  let s = E.serve ~params:serve_params ~cpus:serve_cpus ~tracing:false () in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Printf.eprintf "serve: %d tenants, %d cpus: %.1f ms simulated, %.0f ms wall\n%!"
    s.E.v_tenant_count s.E.v_cpus s.E.v_elapsed_ms wall_ms;
  s

let print_serve_json (s : E.serve_summary) =
  let buf = Buffer.create 4096 in
  let int n buf = Buffer.add_string buf (string_of_int n) in
  let fl v buf = add_float buf v in
  let str v buf = add_json_string buf v in
  Buffer.add_string buf "{\n";
  add_json_string buf "serve";
  Buffer.add_char buf ':';
  add_fields buf
    [
      ("kind", fun buf -> add_json_string buf "serve");
      ("title", fun buf -> add_json_string buf serve_title);
      ( "data",
        fun buf ->
          add_fields buf
            [
              ("cpus", int s.E.v_cpus);
              ("tenants", int s.E.v_tenant_count);
              ("requests_total", int s.E.v_requests_total);
              ("upcalls", int s.E.v_upcalls);
              ("preemptions", int s.E.v_preemptions);
              ("reallocations", int s.E.v_reallocations);
              ("elapsed_ms", fl s.E.v_elapsed_ms);
              ( "per_tenant",
                fun buf ->
                  add_list buf
                    (fun buf (r : E.serve_tenant_row) ->
                      add_fields buf
                        [
                          ("tenant", str r.E.v_tenant);
                          ("class", str r.E.v_class);
                          ("completed", int r.E.v_completed);
                          ("mean_us", fl r.E.v_mean_us);
                          ("p50_us", fl r.E.v_p50_us);
                          ("p99_us", fl r.E.v_p99_us);
                          ("p999_us", fl r.E.v_p999_us);
                          ("max_us", fl r.E.v_max_us);
                          ("slo_ms", fl r.E.v_slo_ms);
                          ("violations", int r.E.v_violations);
                          ("violation_frac", fl r.E.v_violation_frac);
                          ("makespan_ms", fl r.E.v_makespan_ms);
                          ("grants", int r.E.v_grants);
                          ("preempts", int r.E.v_preempts);
                          ("cpu_seconds", fl r.E.v_cpu_seconds);
                          ("program_steps", int r.E.v_program_steps);
                          ("charge_segments", int r.E.v_charge_segments);
                          ("charge_batches", int r.E.v_charge_batches);
                        ])
                    s.E.v_rows );
            ] );
    ];
  Buffer.add_string buf "\n}\n";
  print_string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Cluster mode: multi-machine serving over the modeled network        *)
(* ------------------------------------------------------------------ *)

(* Pinned configuration: 3 machines x 8 CPUs, 12 tenants placed with the
   deliberate skew Cluster.create applies (machine 2 starts empty), small
   per-tenant block universes so out-of-slice reads probe peers.  The
   trajectory must show at least one allocator migration and one remote
   cache hit — that is what BENCH_cluster.json pins. *)

module Cluster = Sa_cluster.Cluster

let cluster_params =
  {
    Cluster.default_params with
    Cluster.machines = 3;
    cpus = 8;
    tenants = 12;
    requests = 80;
    seed = 11;
    cache_blocks = 48;
  }

let cluster_title =
  "Cluster: 3 machines x 8 CPUs, 12 tenants x 80 requests, rebalancing \
   allocator + remote cache fetches"

let run_cluster () =
  let t0 = Unix.gettimeofday () in
  let cl = Cluster.create cluster_params in
  Cluster.run cl;
  let s = Cluster.summary cl in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Printf.eprintf
    "cluster: %d machines x %d cpus, %d tenants: %.1f ms simulated, %.0f ms \
     wall\n\
     %!"
    s.Cluster.cl_machines s.Cluster.cl_cpus s.Cluster.cl_tenants
    s.Cluster.cl_elapsed_ms wall_ms;
  s

let print_cluster_json (s : Cluster.summary) =
  let buf = Buffer.create 4096 in
  let int n buf = Buffer.add_string buf (string_of_int n) in
  let fl v buf = add_float buf v in
  let str v buf = add_json_string buf v in
  let bool v buf = Buffer.add_string buf (if v then "true" else "false") in
  Buffer.add_string buf "{\n";
  add_json_string buf "cluster";
  Buffer.add_char buf ':';
  add_fields buf
    [
      ("kind", fun buf -> add_json_string buf "cluster");
      ("title", fun buf -> add_json_string buf cluster_title);
      ( "data",
        fun buf ->
          add_fields buf
            [
              ("machines", int s.Cluster.cl_machines);
              ("cpus_per_machine", int s.Cluster.cl_cpus);
              ("tenants", int s.Cluster.cl_tenants);
              ("requests_total", int s.Cluster.cl_requests_total);
              ("migrations", int s.Cluster.cl_migrations);
              ("evacuations", int s.Cluster.cl_evacuations);
              ("crashes", int s.Cluster.cl_crashes);
              ("partitions", int s.Cluster.cl_partitions);
              ("remote_hits", int s.Cluster.cl_remote_hits);
              ("remote_fallbacks", int s.Cluster.cl_remote_fallbacks);
              ("net_messages", int s.Cluster.cl_net.Sa_cluster.Net.messages);
              ("net_bytes", int s.Cluster.cl_net.Sa_cluster.Net.bytes);
              ("net_drops", int s.Cluster.cl_net.Sa_cluster.Net.drops);
              ( "alloc_summaries",
                int s.Cluster.cl_alloc.Sa_cluster.Cluster_alloc.summaries );
              ( "alloc_commands",
                int s.Cluster.cl_alloc.Sa_cluster.Cluster_alloc.commands );
              ( "alloc_rebalances",
                int s.Cluster.cl_alloc.Sa_cluster.Cluster_alloc.rebalances );
              ("elapsed_ms", fl s.Cluster.cl_elapsed_ms);
              ("completed_all", bool s.Cluster.cl_completed_all);
              ( "per_machine",
                fun buf ->
                  add_list buf
                    (fun buf (r : Cluster.machine_row) ->
                      add_fields buf
                        [
                          ("machine", int r.Cluster.m_id);
                          ("alive", bool r.Cluster.m_alive);
                          ("tenants_final", int r.Cluster.m_tenants_final);
                          ("upcalls", int r.Cluster.m_upcalls);
                          ("preemptions", int r.Cluster.m_preemptions);
                          ("reallocations", int r.Cluster.m_reallocations);
                          ("migs_in", int r.Cluster.m_migs_in);
                          ("migs_out", int r.Cluster.m_migs_out);
                          ("remote_hits", int r.Cluster.m_remote_hits);
                          ( "remote_fallbacks",
                            int r.Cluster.m_remote_fallbacks );
                          ("util", fl r.Cluster.m_util);
                        ])
                    s.Cluster.cl_machine_rows );
              ( "per_tenant",
                fun buf ->
                  add_list buf
                    (fun buf (r : Cluster.tenant_row) ->
                      add_fields buf
                        [
                          ("tenant", int r.Cluster.c_tenant);
                          ("class", str r.Cluster.c_class);
                          ("home0", int r.Cluster.c_home0);
                          ("home", int r.Cluster.c_home);
                          ("completed", int r.Cluster.c_completed);
                          ("p50_us", fl r.Cluster.c_p50_us);
                          ("p99_us", fl r.Cluster.c_p99_us);
                          ("p999_us", fl r.Cluster.c_p999_us);
                          ("violations", int r.Cluster.c_violations);
                          ("slo_ms", fl r.Cluster.c_slo_ms);
                        ])
                    s.Cluster.cl_tenant_rows );
            ] );
    ];
  Buffer.add_string buf "\n}\n";
  print_string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (wall clock)                              *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* One Test.make per paper table/figure: wall-clock cost of regenerating the
   artifact (smaller workloads so a quota fits several runs). *)
let paper_tests =
  let small = { Nbody.default_params with n_bodies = 60; steps = 2 } in
  Test.make_grouped ~name:"paper"
    [
      Test.make ~name:"table1" (Staged.stage (fun () -> E.table1 ~iters:20 ()));
      Test.make ~name:"table4" (Staged.stage (fun () -> E.table4 ~iters:20 ()));
      Test.make ~name:"table5"
        (Staged.stage (fun () -> E.table5 ~params:small ()));
      Test.make ~name:"figure1"
        (Staged.stage (fun () -> E.figure1 ~params:small ()));
      Test.make ~name:"figure2"
        (Staged.stage (fun () -> E.figure2 ~params:small ()));
      Test.make ~name:"upcall"
        (Staged.stage (fun () -> E.upcall_performance ~iters:20 ()));
    ]

let simulator_tests =
  let module Pqueue = Sa_engine.Pqueue in
  let module Sim = Sa_engine.Sim in
  let module Time = Sa_engine.Time in
  let module Cpu = Sa_hw.Cpu in
  let module Buffer_cache = Sa_hw.Buffer_cache in
  Test.make_grouped ~name:"simulator"
    [
      Test.make ~name:"pqueue add+pop x1000"
        (Staged.stage (fun () ->
             let q = Pqueue.create () in
             for i = 0 to 999 do
               ignore (Pqueue.add q ~key:(i * 7919 mod 1000) ~seq:i i)
             done;
             let rec drain () = match Pqueue.pop q with Some _ -> drain () | None -> () in
             drain ()));
      Test.make ~name:"sim event cascade x1000"
        (Staged.stage (fun () ->
             let sim = Sim.create () in
             let n = ref 0 in
             let rec tick () =
               incr n;
               if !n < 1000 then ignore (Sim.schedule_after sim ~delay:10 tick)
             in
             ignore (Sim.schedule_after sim ~delay:10 tick);
             Sim.run sim));
      Test.make ~name:"cpu segment cycle x1000"
        (Staged.stage (fun () ->
             let sim = Sim.create () in
             let cpu = Cpu.create sim 0 in
             let n = ref 0 in
             let occupant = Cpu.Occupant { space = 0; detail = "bench" } in
             let rec seg () =
               incr n;
               if !n < 1000 then Cpu.begin_work cpu ~occupant ~length:(Time.us 1) seg
             in
             Cpu.begin_work cpu ~occupant ~length:(Time.us 1) seg;
             Sim.run sim));
      Test.make ~name:"buffer cache access x1000"
        (Staged.stage (fun () ->
             let c = Buffer_cache.create ~capacity:64 in
             for i = 0 to 999 do
               match Buffer_cache.access c (i * 31 mod 128) with
               | Buffer_cache.Miss -> Buffer_cache.fill c (i * 31 mod 128)
               | Buffer_cache.Hit | Buffer_cache.Miss_in_flight -> ()
             done));
      Test.make ~name:"octree build n=500"
        (Staged.stage
           (let rng = Sa_engine.Rng.create 7 in
            let bodies = Barneshut.Nbody_sim.plummer rng ~n:500 in
            fun () -> ignore (Barneshut.Octree.build bodies)));
      Test.make ~name:"octree force n=500"
        (Staged.stage
           (let rng = Sa_engine.Rng.create 7 in
            let bodies = Barneshut.Nbody_sim.plummer rng ~n:500 in
            let tree = Barneshut.Octree.build bodies in
            fun () ->
              ignore
                (Barneshut.Octree.force_on tree ~theta:0.7 ~eps:0.05 bodies.(0))));
    ]

(* The calendar queue measured on the access patterns the simulator
   actually generates: monotone seqs, time mostly advancing, a few events
   per instant, cancel-heavy timer traffic.  The steady-state variants
   reuse one queue across runs so the slab is warm — that is the
   configuration whose regressions matter. *)
let calq_bench =
  let module Calq = Sa_engine.Calq in
  Test.make_grouped ~name:"calq"
    [
      Test.make ~name:"add+pop cold x1000"
        (Staged.stage (fun () ->
             let q = Calq.create () in
             for i = 0 to 999 do
               ignore (Calq.add q ~key:(i * 7919 mod 1000) ~seq:i i)
             done;
             let rec drain () =
               match Calq.pop q with Some _ -> drain () | None -> ()
             in
             drain ()));
      Test.make ~name:"steady add+pop x1000"
        (Staged.stage
           (let q = Calq.create () in
            let seq = ref 0 in
            fun () ->
              (* key = seq/4: time advances with ~4 events per instant,
                 the simulator's same-instant FIFO fast path. *)
              for _ = 1 to 1000 do
                ignore (Calq.add q ~key:(!seq lsr 2) ~seq:!seq !seq);
                incr seq;
                ignore (Calq.pop_exn q)
              done));
      Test.make ~name:"steady add+cancel churn x1000"
        (Staged.stage
           (let q = Calq.create () in
            let seq = ref 0 in
            fun () ->
              (* 3 of 4 timers cancelled before firing, like the kernel's
                 quantum timers under frequent rescheduling. *)
              for i = 0 to 999 do
                let h = Calq.add q ~key:(!seq lsr 2) ~seq:!seq !seq in
                incr seq;
                if i land 3 <> 0 then Calq.cancel q h
                else ignore (Calq.pop_exn q)
              done));
    ]

(* The compiled-program interpreter measured in isolation: arena-compile
   cost (with fork-child memoization over a shared leaf), the flat step
   loop's dispatch over an accumulate-and-yield body, and the sync-op fast
   path (uncontended acquire/release).  The interpreter runs are pinned to
   one CPU so the numbers track per-op interpreter overhead, not
   scheduling.  Gated by [micro --check] alongside the engine groups. *)
let program_bench =
  let module Program = Sa_program.Program in
  let module Time = Sa_engine.Time in
  let module System = Sa.System in
  let leaf =
    Program.Build.(
      to_program
        (let* () = compute (Time.us 1) in
         let* () = yield in
         compute (Time.us 1)))
  in
  let fanout =
    Program.Build.(to_program (repeat 64 (fun _ -> fork_unit leaf)))
  in
  let stepper =
    Program.Build.(
      to_program
        (repeat 250 (fun _ ->
             let* () = compute (Time.ns 100) in
             yield)))
  in
  let locker =
    let m = Program.Mutex.create ~name:"bench" () in
    Program.Build.(
      to_program
        (repeat 250 (fun _ -> critical m (compute (Time.ns 100)))))
  in
  let run_one prog () =
    let sys = System.create ~cpus:1 () in
    Sa_engine.Trace.set_recording (Sa_engine.Sim.trace (System.sim sys)) false;
    ignore (System.submit sys ~backend:`Fastthreads_on_sa ~name:"micro" prog);
    System.run sys
  in
  Test.make_grouped ~name:"program"
    [
      Test.make ~name:"compile fanout-64"
        (Staged.stage (fun () -> ignore (Program.compile fanout)));
      Test.make ~name:"step dispatch yield x250"
        (Staged.stage (run_one stepper));
      Test.make ~name:"sync fast path x250" (Staged.stage (run_one locker));
    ]

let micro_estimates test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  List.sort compare
    (Hashtbl.fold
       (fun name result acc ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> (name, est) :: acc
         | Some _ | None -> acc)
       results [])

let run_micro () =
  print_newline ();
  print_endline (String.make 78 '-');
  print_endline "Bechamel micro-benchmarks (wall clock, ns per run)";
  print_endline (String.make 78 '-');
  List.iter
    (fun test ->
      List.iter
        (fun (name, est) -> Printf.printf "%-44s %14.1f ns/run\n" name est)
        (micro_estimates test))
    [ paper_tests; simulator_tests; calq_bench; program_bench ]

(* ------------------------------------------------------------------ *)
(* Micro regression gate                                               *)
(* ------------------------------------------------------------------ *)

(* [micro --record] writes per-benchmark ns/run baselines for the engine
   groups; [micro --check] re-measures and fails (exit 1) when any gated
   benchmark exceeds its baseline by the tolerance, or has disappeared.
   Wall clock on shared CI runners is noisy, so the multiplier is wide:
   the gate exists to catch order-of-magnitude regressions — an
   accidental O(n) scan or a per-event allocation storm on the hot path —
   not single-digit drift. *)
let micro_gate_tolerance = 5.0
let micro_gate_file = "bench/MICRO_BASELINE.txt"

(* Engine groups only: the paper-table group re-runs whole simulations and
   its variance comes from workload content, which the digest gate already
   pins byte-for-byte. *)
let micro_gate_estimates () =
  micro_estimates simulator_tests
  @ micro_estimates calq_bench
  @ micro_estimates program_bench
  |> List.sort compare

let micro_record () =
  let ests = micro_gate_estimates () in
  let oc = open_out micro_gate_file in
  output_string oc
    "# Micro-benchmark baselines (ns/run), written by `bench/main.exe micro \
     --record`.\n";
  Printf.fprintf oc
    "# `micro --check` fails when a benchmark exceeds its baseline by more \
     than %.0fx\n\
     # (or vanishes); re-record on a quiet machine after intentional engine \
     changes.\n"
    micro_gate_tolerance;
  List.iter (fun (n, e) -> Printf.fprintf oc "%s\t%.1f\n" n e) ests;
  close_out oc;
  Printf.printf "recorded %d baselines to %s\n" (List.length ests)
    micro_gate_file

let micro_check () =
  let baselines =
    let ic = open_in micro_gate_file in
    let rec go acc =
      match input_line ic with
      | exception End_of_file ->
          close_in ic;
          List.rev acc
      | "" -> go acc
      | line when line.[0] = '#' -> go acc
      | line -> (
          match String.index_opt line '\t' with
          | Some i ->
              let name = String.sub line 0 i in
              let v =
                float_of_string
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              go ((name, v) :: acc)
          | None -> go acc)
    in
    go []
  in
  let ests = micro_gate_estimates () in
  let failed = ref 0 in
  Printf.printf "%-44s %12s %12s %8s  gate\n" "benchmark" "baseline"
    "measured" "ratio";
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name ests with
      | None ->
          incr failed;
          Printf.printf "%-44s %12.1f %12s %8s  MISSING\n" name base "-" "-"
      | Some est ->
          let ratio = est /. base in
          let ok = ratio <= micro_gate_tolerance in
          if not ok then incr failed;
          Printf.printf "%-44s %12.1f %12.1f %7.2fx  %s\n" name base est
            ratio
            (if ok then "ok" else "FAIL"))
    baselines;
  if !failed > 0 then begin
    Printf.printf "%d micro-gate failure(s) (tolerance %.0fx)\n" !failed
      micro_gate_tolerance;
    exit 1
  end
  else
    Printf.printf "micro gate clean: %d benchmarks within %.0fx of baseline\n"
      (List.length baselines) micro_gate_tolerance

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run_paper () =
  List.iter (fun (_, title, run) -> print_result ~title (run ())) experiments

let find_experiment name =
  List.find_opt (fun (n, _, _) -> n = name) experiments

let () =
  (* A roomier minor heap (2M words = 16 MB) keeps short-lived per-event
     values — closures, trace details, list spines — from being promoted
     mid-run; space_overhead 200 halves major-GC work on what does
     survive.  This shapes wall-clock numbers only, never simulated
     results. *)
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 2 * 1024 * 1024;
      space_overhead = 200;
    };
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  (* Escape hatch for A/B measurement and the record->replay cross-check:
     force the reference CPS interpreter everywhere. *)
  if List.mem "--no-compile" args then
    Sa_uthread.Ft_core.compiled_enabled := false;
  let args =
    List.filter (fun a -> a <> "--json" && a <> "--no-compile") args
  in
  if json then begin
    match args with
    | [ "scale" ] -> print_scale_json (run_scale ())
    | [ "serve" ] -> print_serve_json (run_serve ())
    | [ "cluster" ] -> print_cluster_json (run_cluster ())
    | _ ->
    let selected =
      match args with
      | [] | [ "paper" ] | [ "all" ] -> experiments
      | names ->
          List.map
            (fun name ->
              match find_experiment name with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown experiment %S; known: %s\n" name
                    (String.concat ", "
                       (List.map (fun (n, _, _) -> n) experiments));
                  exit 2)
            names
    in
    print_json selected
  end
  else
    match args with
    | [] -> run_paper ()
    | [ "micro"; "--record" ] -> micro_record ()
    | [ "micro"; "--check" ] -> micro_check ()
    | args ->
        List.iter
          (fun a ->
            match a with
            | "all" ->
                run_paper ();
                run_micro ()
            | "paper" -> run_paper ()
            | "micro" -> run_micro ()
            | "scale" -> print_scale_text (run_scale ())
            | "serve" ->
                R.print_serve ~title:serve_title (run_serve ())
            | "cluster" ->
                R.print_cluster ~title:cluster_title (run_cluster ())
            | name -> (
                match find_experiment name with
                | Some (_, title, run) -> print_result ~title (run ())
                | None ->
                    Printf.eprintf
                      "unknown experiment %S; known: %s, paper, micro, all\n"
                      name
                      (String.concat ", "
                         (List.map (fun (n, _, _) -> n) experiments));
                    exit 2))
          args
